#pragma once

#include <atomic>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <span>

#include "lbmf/adapt/policy_table.hpp"
#include "lbmf/core/fence.hpp"
#include "lbmf/core/membarrier.hpp"
#include "lbmf/core/policies.hpp"
#include "lbmf/core/serializer.hpp"
#include "lbmf/util/cacheline.hpp"

namespace lbmf::adapt {

/// How the asymmetric modes remotely serialize a primary.
enum class AsymmetricBackend : std::uint8_t {
  kSignal,      // per-primary POSIX signal round trip (the paper's prototype)
  kMembarrier,  // one membarrier(2) broadcast covers every primary
};

/// A FencePolicy whose strength is chosen *per primary, at runtime*: each
/// registered primary carries a mode cell (PolicyMode) that secondaries
/// consult, and the primary re-binds at its own quiescent points from a
/// monitor-driven request (see selector.hpp and ws::Scheduler's adaptation
/// hook). This is the runtime realization of the E17 sweep's frontier: the
/// same deployment runs {mfence, mfence} through a steal-storm and the
/// paper's asymmetric protocol through a pop-heavy phase, without
/// recompiling or even re-registering.
///
/// Mode semantics on each side of the Dekker duality:
///
///   kSymmetric      primary_fence = mfence;          serialize = no-op
///   kAsymmetric     primary_fence = compiler fence;  serialize = remote trip
///   kDoubleLmfence  realized as kAsymmetric: with the software prototype a
///                   weak *secondary* would require the primary to serialize
///                   the secondary mid-steal — inverting the protocol roles —
///                   and the mode only wins below round trips of a few tens
///                   of cycles (LE/ST hardware). The secondary keeps its
///                   mfence; only the bookkeeping distinguishes the modes.
///
/// ## Why switching mid-run is safe (proof sketch)
///
/// Def. 2 of the paper requires a *serialization point* between a primary's
/// guarded store and the moment a secondary may trust its read of the
/// primary's flag: either the primary's own fence (symmetric) or the remote
/// serialization the secondary performs (asymmetric). A mode switch is the
/// one place both obligations could be dropped at once — the primary stops
/// fencing while a secondary, still assuming the old mode, skips the trip.
/// quiescent_point() closes that window with a single locked RMW on the
/// mode cell, executed by the primary *between* protocol operations (no
/// announce in flight):
///
///   * The RMW is a full StoreLoad fence, so every store of the *old*
///     regime has drained before the new mode becomes visible — it is
///     itself the Def. 2 serialization point between the regimes.
///   * It is a store, so (TSO, FIFO store buffer) any announce issued under
///     the *new* regime becomes visible only after the new mode does.
///
/// A secondary orders its own announce before the mode read with its
/// unconditional mfence (secondary_fence), then acts on the mode it read:
///
///   * New mode read ⇒ by the first bullet every old-regime store is
///     already visible, and in-flight protocol state is per the new mode,
///     which the secondary now honours.
///   * Old mode read ⇒ the mode publication was not yet visible to it, so
///     by the second bullet *no new-regime announce is visible either* —
///     every store the secondary might miss by acting on the old mode
///     belongs to the new regime, and the primary issued those only after
///     the RMW completed, i.e. after the secondary's own announce (ordered
///     by its mfence before its mode read) was globally visible. The
///     primary's next conflict check therefore observes the secondary and
///     retreats to the gated slow path; the task race resolves there, just
///     as in the steady-state protocol.
///
/// Switching is thus linearized at the RMW: before it the pair runs the old
/// protocol end-to-end, after it the new one, and the straddling case
/// degrades to the protocol's own conflict path rather than to a missed
/// serialization.
class AdaptiveFence {
 public:
  static constexpr std::size_t kMaxPrimaries = 256;

  struct Slot {
    /// Current regime; written only by the registered primary (inside
    /// quiescent_point), read by secondaries on every serialize.
    alignas(kCacheLineSize) std::atomic<PolicyMode> mode{
        PolicyMode::kSymmetric};
    /// Requested regime; written by any controller thread, adopted by the
    /// primary at its next quiescent point.
    std::atomic<PolicyMode> requested{PolicyMode::kSymmetric};
    std::atomic<std::uint64_t> switches{0};
    std::atomic<bool> used{false};
    std::atomic<bool> live{false};
    SerializerRegistry::Handle sig;
  };

  class Handle {
   public:
    Handle() = default;
    bool valid() const noexcept { return slot_ != nullptr; }

   private:
    friend class AdaptiveFence;
    explicit Handle(Slot* s) noexcept : slot_(s) {}
    Slot* slot_ = nullptr;
  };

  static constexpr bool kAsymmetric = true;

  /// Registers the calling thread with the SerializerRegistry and claims a
  /// mode slot; starts in kSymmetric (the self-sufficient regime — safe
  /// before any monitor has spoken). One adaptive registration per thread.
  /// Returns an invalid handle when the pool is exhausted, in which case
  /// primary_fence() falls back to a real fence and serialize() to a no-op:
  /// the pair degenerates to SymmetricFence.
  static Handle register_primary();
  static void unregister_primary(Handle& h);

  /// Hot path: dispatch on the calling thread's own mode (thread-local;
  /// the mode cell is only ever written by this same thread).
  static void primary_fence() noexcept;

  static void secondary_fence() noexcept { store_load_fence(); }

  /// Dispatch on the primary's current mode: no remote work when the
  /// primary fences for itself, a signal round trip (or membarrier
  /// broadcast) when it does not.
  static bool serialize(const Handle& h);

  /// Batched wave: symmetric primaries are skipped, signal-mode primaries
  /// share one overlapped wave, and a membarrier backend collapses every
  /// asymmetric primary into a single broadcast.
  static std::size_t serialize_many(std::span<const Handle> hs);

  static constexpr const char* name() noexcept { return "adaptive"; }

  // -------------------------------------------------------------------
  // Control surface (the FencePolicy concept stops above this line)
  // -------------------------------------------------------------------

  /// Ask the primary behind `h` to move to `m` at its next quiescent
  /// point. Callable from any thread. Returns false on an invalid handle.
  static bool request_mode(const Handle& h, PolicyMode m) noexcept;

  /// Adopt the requested mode. MUST be called by the registered primary
  /// itself, strictly between protocol operations (no announce in flight) —
  /// a worker's own scheduling-loop boundary, a safepoint, an epoch edge.
  /// Returns true iff the mode changed. Refuses to leave kSymmetric when
  /// no remote-serialization path exists (signal registration failed and
  /// membarrier is unavailable), so a degraded primary stays safe.
  static bool quiescent_point(const Handle& h);

  static PolicyMode current_mode(const Handle& h) noexcept;
  static PolicyMode requested_mode(const Handle& h) noexcept;
  static std::uint64_t switch_count(const Handle& h) noexcept;

  /// Process-wide backend for the asymmetric modes. kMembarrier silently
  /// keeps signals when membarrier(2) is unavailable. Intended to be set
  /// once at startup; flipping it mid-run is safe (both backends serialize
  /// every live primary) but pointless.
  static void set_backend(AsymmetricBackend b) noexcept;
  static AsymmetricBackend backend() noexcept;
};

static_assert(FencePolicy<AdaptiveFence>);

/// FencePolicy extension the scheduler's adaptation hook dispatches on:
/// policies whose per-primary strength can be re-bound live.
template <typename P>
concept AdaptiveFencePolicy =
    FencePolicy<P> && requires(const typename P::Handle h, PolicyMode m) {
      { P::request_mode(h, m) } -> std::convertible_to<bool>;
      { P::quiescent_point(h) } -> std::convertible_to<bool>;
      { P::current_mode(h) } -> std::same_as<PolicyMode>;
      { P::switch_count(h) } -> std::convertible_to<std::uint64_t>;
    };

static_assert(AdaptiveFencePolicy<AdaptiveFence>);
static_assert(!AdaptiveFencePolicy<SymmetricFence>);

}  // namespace lbmf::adapt
