#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "lbmf/adapt/monitor.hpp"
#include "lbmf/adapt/policy_table.hpp"

namespace lbmf::adapt {

struct SelectorConfig {
  MonitorConfig monitor;
  /// Consecutive windows the table must propose the *same* non-current
  /// mode before the selector adopts it. This is the hysteresis: an input
  /// straddling a crossover boundary flip-flops the proposal and never
  /// builds a streak, so the current mode sticks.
  int confirm_windows = 3;
  /// > 0: ignore the measured round trip and price serialization at this
  /// many cycles (benchmarks and deployments that calibrated offline).
  double fixed_roundtrip_cycles = 0.0;
  /// Serialization-backend plane consulted in the table (see
  /// PolicyTable::lookup's backend overload). Empty = the base grid. A
  /// non-inverting backend's plane never proposes kDoubleLmfence, so the
  /// selector's choice is realizable by construction.
  std::string backend;
};

/// monitor → table → hysteresis. One per primary/deque; not thread-safe —
/// feed it from the owning worker (or a single controller thread).
class PolicySelector {
 public:
  explicit PolicySelector(PolicyTable table, SelectorConfig cfg = {})
      : table_(std::move(table)), cfg_(cfg), monitor_(cfg.monitor) {}
  PolicySelector() : PolicySelector(PolicyTable::builtin_default()) {}

  /// Feed one sampling window (cumulative counters, as WorkloadMonitor
  /// expects) and return the selected mode after hysteresis.
  PolicyMode update(std::uint64_t pops_total, std::uint64_t steals_total,
                    double measured_roundtrip_cycles = 0.0) {
    monitor_.sample(pops_total, steals_total, measured_roundtrip_cycles);
    const double rt = cfg_.fixed_roundtrip_cycles > 0.0
                          ? cfg_.fixed_roundtrip_cycles
                          : monitor_.roundtrip_cycles();
    const PolicyMode proposal =
        table_.lookup(monitor_.freq_ratio(), rt, cfg_.backend);
    ++windows_;
    if (proposal == current_) {
      streak_ = 0;
      return current_;
    }
    if (proposal == pending_) {
      ++streak_;
    } else {
      pending_ = proposal;
      streak_ = 1;
    }
    if (streak_ >= cfg_.confirm_windows) {
      current_ = proposal;
      streak_ = 0;
      ++switches_;
    }
    return current_;
  }

  PolicyMode current() const noexcept { return current_; }
  std::uint64_t switches() const noexcept { return switches_; }
  std::uint64_t windows() const noexcept { return windows_; }
  const WorkloadMonitor& monitor() const noexcept { return monitor_; }
  const PolicyTable& table() const noexcept { return table_; }

 private:
  PolicyTable table_;
  SelectorConfig cfg_;
  WorkloadMonitor monitor_;
  PolicyMode current_ = PolicyMode::kSymmetric;
  PolicyMode pending_ = PolicyMode::kSymmetric;
  int streak_ = 0;
  std::uint64_t switches_ = 0;
  std::uint64_t windows_ = 0;
};

}  // namespace lbmf::adapt
