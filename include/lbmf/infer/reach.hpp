#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lbmf/infer/sites.hpp"
#include "lbmf/sim/explorer.hpp"
#include "lbmf/util/hash.hpp"

namespace lbmf::infer {

/// The reached-state graph of a problem's *hole-independent prefix region*:
/// every state reachable from the root by schedules that never Execute an
/// instruction at a fence-site index. No such path depends on which fences
/// a candidate materializes — the region's states, edges, terminals and
/// safety verdicts are shared by all |lattice| instantiations — so the
/// engine explores it once (full expansion, POR off, so nothing is deferred
/// twice) and re-enters it per candidate through `seeds`: the frontier
/// states whose deferred at-hole Execute edges remain to be taken.
///
/// Per candidate, each seed's architectural snapshot is restored into a
/// machine running the *instantiated* programs, its pcs remapped through
/// Instantiation::pc_map (shared state, registers, store buffers and caches
/// are hole-independent by construction, and schedules are (cpu, action)
/// pairs — coordinate-free), and sim::explore_seeded resumes with the dedup
/// set preloaded with the region's fingerprints. Those fingerprints encode
/// base-coordinate pcs, so for candidates that insert instructions a suffix
/// path re-entering the region may re-discover a few shared states under
/// shifted pcs; that only ever *adds* exploration (verdicts are reachability
/// properties, and the parity tests pin cold-vs-warm verdict equality).
///
/// A violation found inside the region (no hole executed) transfers to
/// every candidate verbatim, so `base.violation` short-circuits the whole
/// wave. A graph that hit the state budget is left invalid and the engine
/// falls back to cold runs.
struct PrefixGraph {
  struct Seed {
    std::string arch;  // Machine::save_arch bytes, base coordinates
    std::vector<sim::Choice> prefix;  // schedule from the root to here
    std::vector<sim::Choice> agenda;  // deferred at-hole Execute edges
  };

  bool valid = false;
  /// Identity of the problem the graph was built for: config, programs,
  /// sites, initial memory and final property — but NOT cpu freqs or fence
  /// costs, so one graph serves a whole cost sweep.
  Hash128 key{};
  std::vector<sim::Fingerprint> visited;
  std::vector<Seed> seeds;
  /// Region counters/outcomes, merged into every candidate's result.
  sim::ExploreResult base;
};

/// The graph-identity hash (see PrefixGraph::key).
Hash128 problem_graph_key(const InferProblem& p);

/// Explore the hole-independent prefix region of `p` (BFS, full expansion)
/// under the explorer options' check/limits. Returns an invalid graph if
/// the region alone exhausts eo.max_states.
PrefixGraph build_prefix_graph(const InferProblem& p,
                               const sim::Explorer::Options& eo);

/// Instantiate `inst`'s seed machines for one candidate and resume the
/// exploration (see sim::explore_seeded). `eo` must carry the same checks
/// the graph was built under. `symmetry` turns on Machine-level state
/// symmetry (auto_symmetry) for the resumed suffix; the graph itself is
/// always built with plain fingerprints so its seed set covers every
/// deferred hole edge even for candidates that fence group members
/// asymmetrically — preloading plain region fingerprints into a symmetric
/// suffix run stays sound because the region is closed under the CPU
/// permutations (base programs are what made the CPUs symmetric).
sim::ExploreResult explore_with_prefix(const InferProblem& p,
                                       const Instantiation& inst,
                                       const PrefixGraph& g,
                                       const sim::Explorer::Options& eo,
                                       bool symmetry = false);

/// Persist / reload the graph (binary, versioned, fingerprint-keyed).
/// load returns false — leaving `g` invalid — on a missing file, a corrupt
/// file, or a key mismatch against `expected_key`.
bool save_prefix_graph(const PrefixGraph& g, const std::string& path);
bool load_prefix_graph(PrefixGraph& g, const std::string& path,
                       const Hash128& expected_key);

}  // namespace lbmf::infer
