#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lbmf/model/cost_model.hpp"
#include "lbmf/sim/assembler.hpp"
#include "lbmf/sim/litmus.hpp"
#include "lbmf/sim/machine.hpp"
#include "lbmf/sim/program.hpp"

namespace lbmf::infer {

using sim::FenceKind;

/// One candidate fence site: a store in a base program whose fence
/// discipline ({none, mfence, l-mfence}) is up for inference. Sites come
/// from `?fence` holes in a litmus text (problem_from_source) or from
/// static discovery over built programs (discover_sites).
struct FenceSite {
  std::size_t cpu = 0;
  /// Index of the candidate store in the *base* program of `cpu` (the
  /// all-none instantiation). instantiate() reports where it lands once
  /// fences are materialized.
  std::size_t instr_index = 0;
  sim::Addr addr = sim::kInvalidAddr;
  sim::Word value = 0;
  /// Register-sourced stores (kStoreReg) cannot take the l-mfence
  /// expansion, whose ST carries an immediate; only {none, mfence} apply.
  bool is_reg_store = false;
  /// Capability constraint, not a program property: the serialization
  /// backend this sweep plane models cannot run the light path on this
  /// side (e.g. the signal backend only inverts in the primary's favor),
  /// so l-mfence is excluded from the site's lattice. Part of the
  /// *assignment* space, never of the safety verdict — problem_graph_key
  /// ignores it, so VerdictCache/PrefixGraph entries stay shared across
  /// backend planes.
  bool no_lmfence = false;
  std::size_t src_line = 0;  // 1-based .lit line; 0 for programmatic sites
  /// Runtime-source location ("lbmf/ws/deque.hpp:84") carried over from
  /// the hole's `#@` provenance comment when the litmus text was
  /// machine-extracted (lbmf::extract); empty otherwise. Reported by the
  /// JSON source_map and the extract map-back pass; never part of the
  /// problem identity (problem_graph_key ignores it).
  std::string provenance;
};

/// A placement: one FenceKind per site, parallel to InferProblem::sites.
struct Assignment {
  std::vector<FenceKind> kinds;

  bool operator==(const Assignment&) const = default;
};

/// Strength of a kind in the search lattice: none(0) < l-mfence(1) <
/// mfence(2). Adding fence strength at a site only removes TSO behaviours
/// (mfence drains unconditionally; l-mfence drains when the guarded line is
/// remotely touched), so the SAFE region is upward-closed in this order —
/// the monotonicity the engine's counterexample pruning leans on.
int strength(FenceKind k) noexcept;

/// Pointwise: strength(a.kinds[i]) <= strength(b.kinds[i]) for all i.
bool weaker_equal(const Assignment& a, const Assignment& b) noexcept;

/// Compact rendering, e.g. "{l-mfence, none, mfence, none}".
std::string to_string(const Assignment& a);

/// A fence-inference instance: base programs (holes as plain stores), the
/// candidate sites, per-CPU execution frequencies, and the machine
/// configuration the explorer verifies under.
struct InferProblem {
  std::vector<sim::Program> programs;
  std::vector<FenceSite> sites;
  /// Relative execution frequency per CPU (default 1.0): how often this
  /// CPU's protocol entry runs per unit time. The paper's asymmetric Dekker
  /// is exactly the biased case — primary hot, secondary rare.
  std::vector<double> cpu_freqs;
  std::vector<std::pair<sim::Addr, sim::Word>> initial_memory;
  std::map<std::string, sim::Addr> symbols;
  /// Allowed terminal valuations (`final` directives), installed as the
  /// explorer's check on every candidate verification — see
  /// sim::final_state_check. Empty = deadlock detection only.
  std::vector<std::vector<std::pair<sim::Addr, sim::Word>>> final_allowed;
  sim::SimConfig config;
  /// Groups of interchangeable CPUs (byte-identical programs, equal freqs,
  /// aligned sites), auto-detected by problem_from_source. The engine uses
  /// them two ways: candidate assignments are canonicalized per orbit (one
  /// explorer run stands for every within-group permutation of a
  /// placement), and uniform-within-group candidates explore with
  /// Machine-level state symmetry on. Empty = no reduction.
  std::vector<std::vector<std::uint8_t>> symmetric_groups;

  /// Uniform assignment over all sites (e.g. the all-kNone lattice bottom).
  Assignment uniform(FenceKind k) const;

  double cpu_freq(std::size_t cpu) const noexcept;

  /// Symbolic name of `a` if the problem came from a litmus text with
  /// named locations, else the numeric "[N]" form.
  std::string location_name(sim::Addr a) const;

  /// Human-readable site label, e.g. "cpu0@2[L1]=1".
  std::string describe_site(std::size_t site) const;
};

/// Result of parsing a holey litmus text.
struct ProblemParse {
  std::optional<InferProblem> problem;
  std::optional<sim::AssembleError> error;

  bool ok() const noexcept { return problem.has_value(); }
};

/// Parse a litmus source with `?fence` holes (and optional `freq`
/// directives) into an inference problem. cfg.num_cpus is overridden by the
/// number of cpu sections. A source with zero holes is a valid (trivial)
/// problem.
ProblemParse problem_from_source(std::string_view source,
                                 sim::SimConfig cfg = {});

/// Static candidate discovery for builder-made programs: every store that
/// is followed by a later load in the same program (a store→load program
/// point — the only place TSO can reorder) becomes a site.
std::vector<FenceSite> discover_sites(
    const std::vector<sim::Program>& programs);

/// One materialized candidate: the programs with fences expanded, plus
/// where each site's store landed (instruction index in the instantiated
/// program of its CPU) — the program points the counterexample analysis
/// reasons about.
struct Instantiation {
  std::vector<sim::Program> programs;
  std::vector<std::size_t> site_pos;
  /// Per CPU: old instruction index -> instantiated index (one extra entry
  /// mapping old end to new end). The incremental explorer uses this to
  /// remap saved prefix-state pcs into candidate coordinates.
  std::vector<std::vector<std::uint32_t>> pc_map;
};

/// Materialize an assignment: per site, nothing (kNone), an mfence
/// appended after the store (kMfence), or the store replaced by the
/// Fig. 3(b) l-mfence expansion (kLmfence). Branch targets are remapped
/// across the insertions. Aborts on kLmfence at a register-store site.
Instantiation instantiate(const InferProblem& p, const Assignment& a);

/// instantiate() loaded into a machine with the problem's config and
/// initial memory — ready for the explorer.
sim::Machine instantiate_machine(const InferProblem& p, const Assignment& a);

/// Detect interchangeable CPUs of a problem: byte-identical base programs,
/// equal freqs, and fence sites aligned by (instr_index, addr, value).
/// Groups of size >= 2 only; used by problem_from_source.
std::vector<std::vector<std::uint8_t>> detect_symmetric_groups(
    const InferProblem& p);

/// Site indices per group member, ordered by instr_index:
/// result[g][k] lists the sites of p.symmetric_groups[g]'s k-th member.
/// Aligned across members by construction, so permuting the per-member
/// kind tuples of an Assignment along these lists realizes the CPU
/// permutation at the placement level.
std::vector<std::vector<std::vector<std::size_t>>> group_sites(
    const InferProblem& p);

/// Orbit representative of `a` under the problem's symmetric groups: the
/// per-member kind tuples of each group, sorted. Sound as a search-space
/// quotient because within-group CPU permutation is a transition-system
/// automorphism (same verdict) and site costs are group-invariant (equal
/// freqs and identical peer load profiles => equal cost).
Assignment canonicalize_assignment(const InferProblem& p, const Assignment& a);

/// Cost of choosing `k` at one site, in expected cycles per unit time:
///   kNone     0
///   kMfence   freq(cpu) * mfence_cycles
///   kLmfence  freq(cpu) * lest_victim_cycles
///               + Σ_peer-loads-of-addr freq(peer) * (lest_roundtrip
///                                                    + lest_primary_penalty)
/// The l-mfence term charges the *remote* serializations its guard causes:
/// every peer load of the guarded location pays the LE/ST round trip. This
/// is how the engine mechanically rediscovers the paper's Fig. 3 asymmetry
/// — the hot primary wants the 3-cycle l-mfence, while guarding the *rare*
/// side's flag would bill every hot-side load 150 cycles.
double site_cost(const InferProblem& p, std::size_t site, FenceKind k,
                 const model::CostTable& c);

/// Σ site_cost over the assignment.
double assignment_cost(const InferProblem& p, const Assignment& a,
                       const model::CostTable& c);

/// Lower bound on the cost of `a` and every strengthening of it:
/// Σ_site min over kinds with strength >= strength(a.kinds[site]).
/// (Cost is not monotone along the l-mfence→mfence edge, so best-first
/// search orders by this bound rather than by cost.)
double assignment_cost_lower_bound(const InferProblem& p, const Assignment& a,
                                   const model::CostTable& c);

}  // namespace lbmf::infer
