#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lbmf/infer/engine.hpp"
#include "lbmf/infer/sites.hpp"

namespace lbmf::infer {

/// A cost-frontier sweep over one inference problem (the synthesis analogue
/// of the paper's Fig. 6 crossover plots): re-solve the same holey litmus
/// at every point of a (victim frequency × LE/ST remote-round-trip cost)
/// grid and record where the inferred optimum flips between {mfence,
/// mfence}, the asymmetric mix, and double-l-mfence. Safety verdicts do
/// not depend on costs, so all grid points share one VerdictCache: the
/// explorer runs once per *distinct lattice point*, and every other grid
/// point re-ranks cached verdicts — which is what makes a 30-point grid
/// cost barely more than a single solve.
/// One plane of the sweep's serialization-backend dimension.
/// `inverts_roles` mirrors backend::BackendCaps::inverts_roles but is
/// supplied by the caller, so CI sweeps identical planes regardless of
/// whether the build host itself supports the backend (membarrier
/// availability must not change the shipped frontier).
struct SweepBackend {
  std::string name;  // backend::to_string spelling, e.g. "membarrier-pair"
  bool inverts_roles = false;
};

struct SweepOptions {
  /// Values swept for the victim CPU's `freq` weight (cpu_freqs[victim]);
  /// other CPUs keep the problem's own weights. Paper range: 1:1 … 10⁵:1.
  std::vector<double> victim_freqs = {1, 10, 100, 1'000, 10'000, 100'000};
  /// Values swept for CostTable::lest_roundtrip_cycles (the remote-trip
  /// constant that prices every peer load of an l-mfence-guarded line).
  std::vector<double> roundtrips = {10, 50, 150, 500, 1'500};
  /// Which CPU is "the victim" (the hot protocol side whose freq is swept).
  std::size_t victim_cpu = 0;
  /// Serialization-backend dimension: one extra grid per entry. A
  /// role-inverting backend leaves the assignment space unchanged, so its
  /// plane copies the base grid without re-solving; a non-inverting one
  /// re-solves with l-mfence excluded on every non-victim CPU's sites
  /// (FenceSite::no_lmfence). All planes share the base grid's
  /// VerdictCache and PrefixGraph — the constraint prunes assignments,
  /// never changes a verdict. Empty = no backend dimension.
  std::vector<SweepBackend> backends;
  /// Base engine options. costs.lest_roundtrip_cycles and any attached
  /// verdict_cache are overridden per grid point / per sweep.
  InferenceEngine::Options engine;
};

/// The inferred optimum at one grid point.
struct SweepPoint {
  double victim_freq = 1;
  double lest_roundtrip = 150;
  InferStatus status = InferStatus::kUnsat;
  Assignment best;        // valid when status == kSat
  double best_cost = 0;
  bool recheck_safe = false;
};

/// A flip of the inferred optimum between two adjacent victim_freq values
/// at a fixed roundtrip — one point of the Fig. 6 crossover boundary.
struct Crossover {
  double lest_roundtrip = 0;
  double freq_before = 0;
  double freq_after = 0;
  std::string from;  // to_string(Assignment) before the flip
  std::string to;
};

/// One backend plane's solved grid, same row-major geometry as the base.
struct SweepBackendPlane {
  std::string name;
  bool inverts_roles = false;
  std::vector<SweepPoint> points;
};

struct SweepResult {
  std::vector<SweepPoint> points;  // row-major: roundtrips × victim_freqs
  std::vector<double> victim_freqs;
  std::vector<double> roundtrips;
  std::vector<Crossover> crossovers;
  /// Backend dimension (one entry per SweepOptions::backends element, in
  /// order). Inverting planes are verbatim copies of `points`.
  std::vector<SweepBackendPlane> backend_planes;
  /// Explorer verification work across the whole grid, and how much of it
  /// the shared verdict cache absorbed.
  std::uint64_t explorer_runs = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t states_total = 0;
  /// Incremental re-exploration across the grid: the hole-independent
  /// prefix region is built once (its key excludes freqs and costs, so one
  /// graph serves every grid point) and each fresh verification resumes
  /// from it. prefix_states is that one-time region size;
  /// incremental_reuses counts the verifications that resumed from it.
  std::uint64_t prefix_states = 0;
  std::uint64_t incremental_reuses = 0;

  /// All grid points — backend planes included — solved to kSat with a
  /// SAFE recheck.
  bool all_sat() const noexcept;
  /// Distinct optima along the freq axis at the given roundtrip value (the
  /// CI gate asks for >= 2 at the paper's 150-cycle constant).
  std::size_t distinct_optima_at(double roundtrip) const;
};

/// Run the sweep. The problem is taken by value: each grid point solves a
/// copy with cpu_freqs[victim_cpu] replaced by the grid value.
SweepResult run_sweep(InferProblem problem, const SweepOptions& opts);

/// Single-line JSON report (grid, per-point optima, crossovers, cache
/// accounting, and — when the sweep ran a backend dimension — a trailing
/// "backend_planes" section) — the payload of BENCH_sweep.json and
/// --sweep --json.
std::string sweep_to_json(const SweepResult& r, const std::string& workload);

/// Collapse a sweep to the compact runtime policy table consumed by
/// adapt::PolicyTable::from_json: per grid point, classify the optimum by
/// its victim/thief *announce* sites (both l-mfence → "double-lmfence",
/// victim only → "asymmetric", otherwise — including non-SAT points —
/// "symmetric", the always-safe regime). Site indices default to the
/// THE-deque litmus hole order {victim announce, victim retreat, thief
/// announce, thief retreat}. Backend planes are emitted as a "backends"
/// name list plus one "plane:<name>" mode array each, matching
/// PolicyTable::from_json's compact form.
std::string sweep_to_policy_json(const SweepResult& r,
                                 std::size_t victim_site = 0,
                                 std::size_t thief_site = 2);

}  // namespace lbmf::infer
