#pragma once

/// lbmf::infer — counterexample-guided fence inference and minimization
/// over the LE/ST simulator: given a program with candidate fence sites
/// (`?fence` holes) and the explorer as a safety oracle, find the
/// minimum-cost placement of {none, mfence, l-mfence} per site.

#include "lbmf/infer/engine.hpp"
#include "lbmf/infer/reach.hpp"
#include "lbmf/infer/sites.hpp"
#include "lbmf/infer/sweep.hpp"
