#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "lbmf/infer/sites.hpp"
#include "lbmf/model/cost_model.hpp"
#include "lbmf/sim/explorer.hpp"
#include "lbmf/sim/types.hpp"

namespace lbmf::infer {

struct PrefixGraph;

enum class InferStatus : std::uint8_t {
  kSat,    // a SAFE placement exists; `best` holds the cheapest one found
  kUnsat,  // no placement makes the program safe (fence-independent bug)
  kLimit,  // inconclusive: a state budget or candidate cap was hit first
};

const char* to_string(InferStatus s) noexcept;

/// One entry of the minimality certificate: what happened when `site` was
/// weakened (to = kNone) or swapped to the other fence kind, starting from
/// the winning assignment. Strengthenings are certified SAFE by lattice
/// monotonicity without a run; weakenings are answered by the verdict
/// cache, by a learned counterexample clause, or by a fresh exploration
/// when the mutation would actually be cheaper. Mutations that are both
/// pricier and undecidable without a run are omitted from the certificate.
struct MinimalityNote {
  std::size_t site = 0;
  FenceKind from = FenceKind::kNone;
  FenceKind to = FenceKind::kNone;
  bool safe = false;       // did the mutated placement stay SAFE?
  bool hit_limit = false;  // mutation check inconclusive
  double cost_delta = 0;   // cost(mutated) - cost(best); > 0 means pricier
};

/// Shared memo of safety verdicts, keyed by assignment. A placement's
/// SAFE/violation verdict depends only on the instantiated programs — never
/// on the CostTable or the freq weights — so a cost-frontier sweep that
/// revisits the same lattice points under different costs can reuse every
/// explorer run. Thread-safe (engines verify waves concurrently).
/// Inconclusive (hit_limit) results are never stored: a bigger budget on a
/// later run must be allowed to try again.
class VerdictCache {
 public:
  std::optional<sim::ExploreResult> lookup(
      const std::vector<FenceKind>& kinds) const {
    std::lock_guard<std::mutex> g(mu_);
    const auto it = map_.find(kinds);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  void store(const std::vector<FenceKind>& kinds,
             const sim::ExploreResult& r) {
    std::lock_guard<std::mutex> g(mu_);
    map_.emplace(kinds, r);
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> g(mu_);
    return map_.size();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::vector<FenceKind>, sim::ExploreResult> map_;
};

struct InferResult {
  InferStatus status = InferStatus::kUnsat;

  /// Valid when status == kSat.
  Assignment best;
  double best_cost = 0;

  /// Assignments whose safety was actually model-checked (explorer runs),
  /// including the minimality pass; the CEGIS-vs-naive bench ratio is over
  /// this counter.
  std::uint64_t candidates_verified = 0;
  /// Assignments dispatched without an explorer run because a learned
  /// clause already covers them (a prior counterexample applies).
  std::uint64_t candidates_pruned = 0;
  /// Assignments answered from Options::verdict_cache instead of a fresh
  /// explorer run (0 when no cache is attached). Not counted in
  /// candidates_verified or states_total.
  std::uint64_t cache_hits = 0;
  /// Distinct assignments ever enqueued.
  std::uint64_t candidates_generated = 0;
  /// Full lattice size Π per-site kind counts (3^holes minus the l-mfence
  /// option at register-store sites) — what naive enumeration verifies.
  std::uint64_t lattice_size = 0;
  /// Σ states_explored over every explorer invocation. Candidate checks
  /// that resumed from the prefix graph contribute only their *new* suffix
  /// states here; the shared region is counted once in prefix_states.
  std::uint64_t states_total = 0;
  /// States in the hole-independent prefix region (0 when incremental mode
  /// is off or the region alone blew the per-check budget).
  std::uint64_t prefix_states = 0;
  /// Candidate checks that resumed from the prefix graph instead of
  /// re-exploring from the root.
  std::uint64_t incremental_reuses = 0;

  /// Final fresh explorer run over `best` (not counted above): the
  /// end-to-end certificate that the emitted placement is SAFE.
  bool recheck_safe = false;

  /// Human-readable learned clauses ("strengthen one of: ..."), in the
  /// order the counterexamples produced them.
  std::vector<std::string> clauses;
  std::vector<MinimalityNote> minimality;

  /// For kUnsat: the fence-independent violation and its schedule.
  std::optional<std::string> unsat_violation;
  std::vector<sim::Choice> unsat_trace;
};

/// Counterexample-guided search for the minimum-cost SAFE fence placement.
///
/// The search walks the per-site strength lattice (none < l-mfence <
/// mfence) best-first by cost lower bound, model-checking each popped
/// assignment with sim::Explorer. Every violating run is replayed to find
/// its *culprit sites* — the candidate program points a store-to-load
/// reordering actually crossed — and learns the clause "any safe placement
/// must strengthen one culprit site beyond what this candidate had there".
/// Candidates covered by a learned clause are pruned without an explorer
/// run; a counterexample with no culprit sites (the violation happens with
/// no reordering at all) proves the program unsafe under every placement.
/// A final minimality pass weakens/swaps each fence of the winner and
/// re-verifies, emitting a per-site certificate. See docs/ARCHITECTURE.md
/// "Fence inference".
class InferenceEngine {
 public:
  struct Options {
    model::CostTable costs;
    /// Explorer state budget per candidate check.
    std::uint64_t max_states_per_check = 500'000;
    /// Hard cap on explorer invocations (runaway-lattice backstop).
    std::uint64_t max_candidates = 100'000;
    /// lbmf::ws workers per explorer run (the explorer's parallel fan-out).
    std::size_t explorer_threads = 1;
    /// Frontier candidates verified concurrently per wave (each on its own
    /// thread, each running its own explorer).
    std::size_t batch = 1;
    bool por = true;
    /// Naive 3^k enumeration instead of the guided search — the bench
    /// baseline and a cross-check oracle for tests.
    bool exhaustive = false;
    /// Learn clauses from counterexamples (off => plain best-first).
    bool learn_clauses = true;
    /// Run the drop/downgrade minimality pass on the winner.
    bool minimality_pass = true;
    /// Optional cross-run verdict memo (not owned; must outlive the
    /// engine). The final recheck always bypasses it, so the emitted
    /// certificate is a fresh exploration even on a fully cached run.
    VerdictCache* verdict_cache = nullptr;
    /// Thread-symmetry reduction: candidate assignments are canonicalized
    /// per orbit of the problem's symmetric_groups (one run stands for
    /// every within-group permutation of a placement), learned clauses
    /// prune across those permutations, and every explored machine gets
    /// Machine-level state symmetry via auto_symmetry(). Off = the exact
    /// search, one run per lattice point reached.
    bool symmetry = true;
    /// Incremental re-exploration: explore the hole-independent prefix
    /// region once (see infer/reach.hpp) and resume every candidate check
    /// from its frontier instead of from the root. Verdict-equivalent to
    /// cold checks; falls back to cold runs when the region alone exceeds
    /// max_states_per_check.
    bool incremental = true;
    /// Externally built or loaded prefix graph (not owned; must outlive
    /// the engine). Used only when valid and its key matches this
    /// problem's problem_graph_key; otherwise the engine builds its own
    /// when `incremental` is set. run_sweep shares one graph this way
    /// across a whole cost grid.
    const PrefixGraph* prefix_graph = nullptr;
  };

  InferenceEngine(InferProblem problem, Options opts);

  InferResult run();

  /// The explorer configuration `o` implies for checking candidates of `p`
  /// (coherence + mutual-exclusion checks, the problem's final-state
  /// property, state budget, POR, threads). Shared by the engine itself,
  /// run_sweep's grid-wide prefix-graph build and the CLI's --graph-cache
  /// path, so every prefix graph is built under the exact checks it will
  /// later answer for.
  static sim::Explorer::Options explorer_options_for(const InferProblem& p,
                                                     const Options& o);

 private:
  InferProblem p_;
  Options o_;
};

}  // namespace lbmf::infer
