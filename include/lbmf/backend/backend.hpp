#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "lbmf/core/serializer.hpp"

namespace lbmf::backend {

/// Serialization backends: the mechanism an asymmetric fence policy uses to
/// remotely serialize another thread.
///
/// The paper's software prototype (Sec. 5) is one-directional: secondaries
/// post a signal at the *registered* primary, so only the primary may run the
/// light path and the double-l-mfence regime of Fig. 3 is unreachable.
/// Realizing it needs a backend that can *invert roles* — the primary must be
/// able to drain its peers just as cheaply as they drain it. Two mechanisms
/// qualify:
///
///  * **membarrier-pair** — membarrier(2) MEMBARRIER_CMD_PRIVATE_EXPEDITED
///    broadcasts an IPI-backed barrier at every thread of the process, in
///    either direction, so both sides may keep a compiler-only fence on the
///    hot path and pay the broadcast only at conflict time.
///
///  * **sim-lest** — routes live fence traffic through `lbmf::sim`'s LE/ST
///    machinery: each trip replays the roundtrip litmus on the simulated
///    x86-TSO machine (pricing it at the paper's ~150-cycle LE/ST RTT) and
///    then performs a real drain so the host runtime stays correct. This
///    closes the loop between the simulator and the live runtime: the
///    adaptation layer sees the RTT the paper's hardware proposal would
///    deliver.
enum class BackendId : std::uint8_t {
  kSignal = 0,          ///< POSIX-signal serializer (SerializerRegistry)
  kMembarrierPair = 1,  ///< membarrier(2) EXPEDITED broadcasts, both ways
  kSimLest = 2,         ///< live traffic priced through lbmf::sim's LE/ST
};

inline constexpr std::size_t kBackendCount = 3;

const char* to_string(BackendId id) noexcept;
std::optional<BackendId> backend_from_string(std::string_view name) noexcept;

/// What a backend can do on this host, architecturally. `asymmetric` means
/// secondaries can remotely drain a registered primary (enables the
/// kAsymmetric regime); `inverts_roles` means the primary can also drain all
/// of its peers, so *both* sides may run the light path (enables
/// kDoubleLmfence). The signal backend never inverts; the membarrier-backed
/// backends invert exactly when the kernel supports EXPEDITED membarrier.
struct BackendCaps {
  bool asymmetric = false;
  bool inverts_roles = false;
};

/// One serialization mechanism. Stateless from the caller's point of view:
/// primaries keep registering through SerializerRegistry (the slot's Handle
/// doubles as the target for every backend), and the backend decides how a
/// drain is delivered. Implementations are process-wide singletons obtained
/// via serialization_backend() and are safe to call from any thread.
class SerializationBackend {
 public:
  virtual ~SerializationBackend() = default;

  virtual BackendId id() const noexcept = 0;
  virtual const char* name() const noexcept = 0;
  virtual BackendCaps caps() const noexcept = 0;

  /// Secondary-side drain: force the primary identified by `h` to serialize
  /// its instruction stream, returning only after it has done so. Returns
  /// false when this backend cannot deliver the drain (caller must fall back
  /// to a full fence on its own side — see AdaptiveFence's realize step).
  virtual bool serialize(const SerializerRegistry::Handle& h) = 0;

  /// Batched secondary-side drain over a wave of primaries. Returns the
  /// number successfully serialized.
  virtual std::size_t serialize_many(
      std::span<const SerializerRegistry::Handle> hs) = 0;

  /// Primary-side drain of *all* peers — the role-inversion primitive that
  /// makes double-l-mfence realizable. Returns false when this backend
  /// cannot invert roles (signal; membarrier-backed ones without kernel
  /// support).
  virtual bool serialize_peers() = 0;

  /// Advisory price of one remote trip in TSC cycles: a measured EWMA when
  /// the backend has one, otherwise the documented default. The adaptation
  /// layer feeds this into the policy-table lookup so the frontier is priced
  /// per backend (~10k signal, ~2.5k membarrier, ~150 simulated LE/ST).
  virtual double roundtrip_cycles() const noexcept = 0;
};

/// Process-wide singleton for `id` (function-local statics; thread-safe).
SerializationBackend& serialization_backend(BackendId id) noexcept;

/// Override the sim-lest backend's advisory RTT (cycles). <= 0 restores the
/// default: the RTT measured from the simulator's roundtrip litmus (~150).
void set_simlest_roundtrip_cycles(double cycles) noexcept;

/// Ledger of live trips the sim-lest backend routed through the simulator,
/// and the total simulated cycles they were priced at (bench observability).
std::uint64_t simlest_trips() noexcept;
std::uint64_t simlest_modeled_cycles() noexcept;

/// Number of EXPEDITED broadcasts the membarrier-pair backend has issued.
std::uint64_t membarrier_trips() noexcept;

}  // namespace lbmf::backend
