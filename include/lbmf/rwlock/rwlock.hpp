#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>

#include <pthread.h>

#include "lbmf/core/policies.hpp"
#include "lbmf/util/cacheline.hpp"
#include "lbmf/util/check.hpp"
#include "lbmf/util/spin.hpp"

namespace lbmf {

/// Aggregate event counters for the biased readers-writer lock.
struct RwLockStats {
  std::uint64_t read_acquires = 0;
  std::uint64_t reader_retreats = 0;   // reader backed off for a writer
  std::uint64_t write_acquires = 0;
  std::uint64_t serializations = 0;    // writer remotely serialized a reader
  std::uint64_t ack_clears = 0;        // ARW+: slot cleared by a reader ack
  std::uint64_t signal_clears = 0;     // slot cleared by forced serialization
};

/// The paper's asymmetric multiple-readers single-writer lock (Sec. 5),
/// biased toward readers: each *registered reader* is an l-mfence primary
/// whose read-lock fast path is
///
///     flag = 1;  <primary fence: compiler-only for ARW>;  check intent
///
/// and the writer is the secondary, engaging in an augmented Dekker protocol
/// with *each* registered reader: publish intent, mfence, then for every
/// reader either remotely serialize it (ARW), or — with the waiting
/// heuristic (ARW+) — first give readers a grace window to acknowledge the
/// intent voluntarily and signal only the silent ones.
///
/// Flavors (matching the paper's three locks):
///   BiasedRwLock<SymmetricFence>                    — the SRW control
///   BiasedRwLock<AsymmetricSignalFence>             — ARW
///   BiasedRwLock<AsymmetricSignalFence, true>       — ARW+
///
/// `kBatchedSignals` selects the writer's fan-out shape: batched (default)
/// posts one serialize_many() wave to every reader it must signal and only
/// then spin-waits on their flags, so the writer pays the slowest round trip
/// instead of the sum; false reproduces the paper's sequential
/// signal-one-wait-one loop (kept as the measured baseline, bench_arw E15).
template <FencePolicy P, bool kWaitingHeuristic = false,
          bool kBatchedSignals = true>
class BiasedRwLock {
 public:
  static constexpr std::size_t kMaxReaders = 64;
  /// ARW+ grace window (spin iterations) before the writer falls back to
  /// signaling the non-acknowledging readers.
  static constexpr int kAckSpinBudget = 512;

  BiasedRwLock() = default;
  BiasedRwLock(const BiasedRwLock&) = delete;
  BiasedRwLock& operator=(const BiasedRwLock&) = delete;

  /// RAII registration of the calling thread as a reader. Must be created
  /// and destroyed on the reader's own thread; must not outlive the lock.
  class ReaderToken {
   public:
    ReaderToken(ReaderToken&& o) noexcept
        : lock_(o.lock_), slot_(o.slot_) {
      o.lock_ = nullptr;
    }
    ReaderToken(const ReaderToken&) = delete;
    ReaderToken& operator=(const ReaderToken&) = delete;
    ReaderToken& operator=(ReaderToken&&) = delete;

    ~ReaderToken() {
      if (lock_ != nullptr) lock_->unregister_reader(*this);
    }

    /// Reader fast path — the l-mfence announce of Fig. 3(a).
    void read_lock() {
      Slot& s = *lock_->slots_[slot_];
      SpinWait waiter;
      for (;;) {
        compiler_fence();
        s.flag.store(1, std::memory_order_relaxed);
        P::primary_fence();  // compiler-only under ARW/ARW+
        const std::uint64_t intent =
            lock_->intent_->load(std::memory_order_acquire);
        if (intent == 0) break;  // no writer pending: we are in
        // A writer is pending: retreat, acknowledge its epoch (ARW+ fast
        // clear; harmless otherwise), and wait it out.
        s.flag.store(0, std::memory_order_release);
        s.ack.store(intent, std::memory_order_release);
        s.retreats.fetch_add(1, std::memory_order_relaxed);
        waiter.reset();
        while (lock_->intent_->load(std::memory_order_acquire) != 0) {
          waiter.wait();
        }
      }
      s.reads.fetch_add(1, std::memory_order_relaxed);
    }

    void read_unlock() {
      Slot& s = *lock_->slots_[slot_];
      s.flag.store(0, std::memory_order_release);
      // Waiting heuristic: tell a pending writer it no longer needs to
      // signal us. The TSO store buffer completes flag=0 before ack, so an
      // observed ack implies our flag is down.
      const std::uint64_t intent =
          lock_->intent_->load(std::memory_order_acquire);
      if (intent != 0) s.ack.store(intent, std::memory_order_release);
    }

    /// This reader's policy registration, for callers that re-bind the
    /// policy's strength or serialization backend live (AdaptiveFence
    /// request_mode/request_backend; the reader thread itself must run the
    /// quiescent_point, between read-lock sections).
    typename P::Handle handle() const noexcept {
      return lock_->slots_[slot_]->handle;
    }

   private:
    friend class BiasedRwLock;
    ReaderToken(BiasedRwLock* lock, std::size_t slot)
        : lock_(lock), slot_(slot) {}

    BiasedRwLock* lock_;
    std::size_t slot_;
  };

  /// Register the calling thread as a reader (binds its l-mfence primary
  /// registration). Aborts if more than kMaxReaders register concurrently.
  ReaderToken register_reader() {
    for (std::size_t i = 0; i < kMaxReaders; ++i) {
      Slot& s = *slots_[i];
      bool expected = false;
      if (!s.used.load(std::memory_order_relaxed) &&
          s.used.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
        s.handle = P::register_primary();
        s.owner = pthread_self();
        s.flag.store(0, std::memory_order_relaxed);
        s.ack.store(0, std::memory_order_relaxed);
        s.live.store(true, std::memory_order_release);
        std::size_t hw = high_water_.load(std::memory_order_relaxed);
        while (hw < i + 1 && !high_water_.compare_exchange_weak(
                                 hw, i + 1, std::memory_order_acq_rel)) {
        }
        return ReaderToken(this, i);
      }
    }
    LBMF_CHECK_MSG(false, "BiasedRwLock reader slots exhausted");
    return ReaderToken(this, 0);  // unreachable
  }

  /// Writer slow path: the augmented Dekker round against every reader.
  void write_lock() {
    writer_gate_.lock();
    const std::uint64_t epoch = ++epoch_counter_;
    intent_->store(epoch, std::memory_order_relaxed);
    P::secondary_fence();  // always a real fence

    const std::size_t hw = high_water_.load(std::memory_order_acquire);

    if constexpr (kWaitingHeuristic) {
      // Grace window: wait for readers to acknowledge the epoch on their
      // own (they do so at lock/unlock) before resorting to signals. The
      // waiter yields, so the heuristic works even on an oversubscribed
      // host where the readers need this core to run. The writer's own
      // reader slot is excluded: it cannot acknowledge itself, and its
      // flag=0 store is already ordered by the intent fence above.
      SpinWait grace(/*spin_limit=*/8);
      bool all_acked = false;
      for (int spin = 0; spin < kAckSpinBudget && !all_acked; ++spin) {
        all_acked = true;
        for (std::size_t i = 0; i < hw; ++i) {
          Slot& s = *slots_[i];
          if (!s.live.load(std::memory_order_acquire)) continue;
          if (pthread_equal(s.owner, pthread_self())) continue;
          if (s.ack.load(std::memory_order_acquire) != epoch) {
            all_acked = false;
          }
        }
        if (!all_acked) grace.wait();
      }
    }

    if constexpr (kBatchedSignals) {
      // Batched round: classify every live reader first (ack-cleared vs.
      // must-signal), fan the signals out as ONE serialize_many wave, and
      // only then spin-wait on the flags. The wave overlaps the round
      // trips, so the writer's serialization cost is max, not sum.
      std::array<typename P::Handle, kMaxReaders> wave;
      std::array<Slot*, kMaxReaders> pending;
      std::size_t nwave = 0, npending = 0;
      for (std::size_t i = 0; i < hw; ++i) {
        Slot& s = *slots_[i];
        if (!s.live.load(std::memory_order_acquire)) continue;
        // Only ARW+ trusts reader acknowledgments; the plain ARW writer
        // signals every reader unconditionally (Sec. 5: "the writer ends
        // up signaling a list of readers ... one by one"). A writer's own
        // reader slot needs neither ack nor signal: its flag stores are
        // ordered by the intent fence it just executed.
        bool cleared_by_ack = false;
        if constexpr (kWaitingHeuristic) {
          cleared_by_ack = s.ack.load(std::memory_order_acquire) == epoch ||
                           pthread_equal(s.owner, pthread_self());
        }
        if (cleared_by_ack) {
          // Reader acknowledged: its flag=0 completed before the ack (TSO
          // FIFO), and it cannot re-enter while intent is set.
          wstats_->ack_clears.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Force the reader to serialize so a flag=1 parked in its store
          // buffer (committed before our intent became visible) is exposed.
          wave[nwave++] = s.handle;
          wstats_->signal_clears.fetch_add(1, std::memory_order_relaxed);
        }
        pending[npending++] = &s;
      }
      const std::size_t serialized = P::serialize_many(
          std::span<const typename P::Handle>(wave.data(), nwave));
      wstats_->serializations.fetch_add(serialized,
                                        std::memory_order_relaxed);
      for (std::size_t i = 0; i < npending; ++i) {
        SpinWait waiter;
        while (pending[i]->flag.load(std::memory_order_acquire) != 0) {
          waiter.wait();
        }
      }
    } else {
      // Sequential round (pre-batching baseline): one full round trip per
      // reader, each awaited before the next is posted.
      for (std::size_t i = 0; i < hw; ++i) {
        Slot& s = *slots_[i];
        if (!s.live.load(std::memory_order_acquire)) continue;
        bool cleared_by_ack = false;
        if constexpr (kWaitingHeuristic) {
          cleared_by_ack = s.ack.load(std::memory_order_acquire) == epoch ||
                           pthread_equal(s.owner, pthread_self());
        }
        if (cleared_by_ack) {
          wstats_->ack_clears.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Use the policy's pre-batching serialize when it has one so this
          // leg measures the original writer's cost, not just its shape.
          bool ok;
          if constexpr (requires { P::serialize_baseline(s.handle); }) {
            ok = P::serialize_baseline(s.handle);
          } else {
            ok = P::serialize(s.handle);
          }
          if (ok) {
            wstats_->serializations.fetch_add(1, std::memory_order_relaxed);
          }
          wstats_->signal_clears.fetch_add(1, std::memory_order_relaxed);
        }
        SpinWait waiter;
        while (s.flag.load(std::memory_order_acquire) != 0) waiter.wait();
      }
    }
    wstats_->write_acquires.fetch_add(1, std::memory_order_relaxed);
  }

  void write_unlock() {
    intent_->store(0, std::memory_order_release);
    writer_gate_.unlock();
  }

  /// Merged counters (exact while quiescent; safely readable — relaxed
  /// atomic loads — while writers are mid-acquire).
  RwLockStats stats() const {
    RwLockStats out;
    out.write_acquires =
        wstats_->write_acquires.load(std::memory_order_relaxed);
    out.serializations =
        wstats_->serializations.load(std::memory_order_relaxed);
    out.ack_clears = wstats_->ack_clears.load(std::memory_order_relaxed);
    out.signal_clears =
        wstats_->signal_clears.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kMaxReaders; ++i) {
      out.read_acquires +=
          slots_[i]->reads.load(std::memory_order_relaxed);
      out.reader_retreats +=
          slots_[i]->retreats.load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  struct Slot {
    std::atomic<int> flag{0};          // reader's Dekker flag (L1)
    std::atomic<std::uint64_t> ack{0}; // last intent epoch acknowledged
    std::atomic<bool> used{false};     // slot claimed (never recycled race)
    std::atomic<bool> live{false};     // reader currently registered
    pthread_t owner{};                 // registered reader's thread
    typename P::Handle handle{};
    std::atomic<std::uint64_t> reads{0};  // owning reader only; relaxed
    std::atomic<std::uint64_t> retreats{0};
  };

  void unregister_reader(ReaderToken& t) {
    Slot& s = *slots_[t.slot_];
    // Exclude a concurrent writer: it may be about to serialize us.
    std::lock_guard<std::mutex> g(writer_gate_);
    s.live.store(false, std::memory_order_release);
    P::unregister_primary(s.handle);
    s.used.store(false, std::memory_order_release);
  }

  /// Writer-side counters. Incremented only under the writer gate, but read
  /// by stats() from any thread at any time — hence atomics with relaxed
  /// ordering (the values are monotonic event counts, not synchronization).
  struct WriterCounters {
    std::atomic<std::uint64_t> write_acquires{0};
    std::atomic<std::uint64_t> serializations{0};
    std::atomic<std::uint64_t> ack_clears{0};
    std::atomic<std::uint64_t> signal_clears{0};
  };

  CacheAligned<Slot> slots_[kMaxReaders];
  CacheAligned<std::atomic<std::uint64_t>> intent_{0};  // 0 = no writer (L2)
  CacheAligned<WriterCounters> wstats_;
  std::mutex writer_gate_;
  std::atomic<std::uint64_t> epoch_counter_{0};
  std::atomic<std::size_t> high_water_{0};
};

/// The paper's three locks.
using SrwLock = BiasedRwLock<SymmetricFence, false>;
using ArwLock = BiasedRwLock<AsymmetricSignalFence, false>;
using ArwPlusLock = BiasedRwLock<AsymmetricSignalFence, true>;

/// Pre-batching writers (sequential signal-one-wait-one fan-out): the
/// measured baseline for the serialize_many wave, and the second leg of the
/// existing-tests-pass-on-both-paths guarantee.
using ArwLockSequential = BiasedRwLock<AsymmetricSignalFence, false, false>;
using ArwPlusLockSequential =
    BiasedRwLock<AsymmetricSignalFence, true, false>;

}  // namespace lbmf

#if defined(LBMF_EXTRACT) && LBMF_EXTRACT
#include "lbmf/extract/annotate.hpp"

namespace lbmf {

/// The biased read/write Dekker protocol above, annotated for
/// lbmf::extract: one hot reader against two gate-serialized writers.
/// Locations: [R] the reader's slot flag, [I] write intent, [WG] the
/// writer gate. Each side's announce (and the writer's back-off retreat)
/// is a `?fence` hole; mutual exclusion is the built-in critical-section
/// check, so no final property is recorded. `lbmf_extract biased-rwlock`
/// regenerates examples/litmus/biased_rwlock.lit from this function.
inline extract::Spec record_biased_rwlock_protocol() {
  using namespace extract;
  Recorder rec("biased-rwlock");

  // read_lock() fast path: announce the slot flag (hole A — the paper
  // makes this a compiler fence), check intent, enter or back off.
  auto reader = LBMF_ROLE(rec, "reader", 1000);
  LBMF_FENCE_HOLE(reader, "R", 1);   // announce read intent
  LBMF_LOAD(reader, r0, "I");        // any writer announced?
  LBMF_BNE(reader, r0, 0, "yield");
  LBMF_CRITICAL(reader);             // read-side critical section
  LBMF_LABEL(reader, "yield");
  LBMF_STORE(reader, "R", 0);        // read_unlock / back off
  LBMF_HALT(reader);

  // write_lock(): the gate serializes writers, then the same Dekker
  // against the reader from the other side.
  auto write = [&rec](const char* name) {
    auto writer = LBMF_ROLE(rec, name, 1);
    LBMF_RMW_ACQUIRE(writer, "WG");
    LBMF_FENCE_HOLE(writer, "I", 1);  // announce write intent
    LBMF_LOAD(writer, r0, "R");       // reader inside?
    LBMF_BNE(writer, r0, 0, "backoff");
    LBMF_CRITICAL(writer);            // write-side critical section
    LBMF_STORE(writer, "I", 0);       // write_unlock
    LBMF_RMW_RELEASE(writer, "WG");
    LBMF_HALT(writer);
    LBMF_LABEL(writer, "backoff");
    LBMF_FENCE_HOLE(writer, "I", 0);  // retreat the announce
    LBMF_RMW_RELEASE(writer, "WG");
    LBMF_HALT(writer);
  };
  write("writer1");
  write("writer2");
  LBMF_SYMMETRIC(rec, "writer1", "writer2");
  return std::move(rec).take();
}

}  // namespace lbmf
#endif  // LBMF_EXTRACT
