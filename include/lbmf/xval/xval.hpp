#pragma once

/// lbmf::xval — hardware cross-validation of the LE/ST simulator.
///
/// Compile any assembler-accepted litmus into a pthread stress test over
/// real shared memory (native.hpp), exhaustively enumerate the simulator's
/// terminal outcomes for the same program (harness.hpp), and diff the two:
/// a native observation outside the model's reachable set is a
/// model-soundness failure; a reachable outcome never observed is merely
/// coverage. See docs/ARCHITECTURE.md, "Hardware cross-validation".

#include "lbmf/xval/harness.hpp"
#include "lbmf/xval/native.hpp"
#include "lbmf/xval/observation.hpp"
