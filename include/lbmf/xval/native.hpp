#pragma once

/// The native half of lbmf::xval: run an assembled litmus as a pthread
/// stress test on the host's real x86-TSO memory system.
///
/// Every simulated instruction maps onto a real one over real shared
/// memory (distinct cache lines per simulated location):
///
///   store/load        relaxed std::atomic accesses — plain MOVs on x86,
///                     which is exactly TSO: the hardware store buffer
///                     provides the reordering the simulator models
///   mfence            std::atomic_thread_fence(seq_cst) — a real MFENCE
///   lock/unlock       locked XCHG loop / sequentially-consistent store —
///                     the implicit-full-fence semantics of the simulated
///                     locked RMW
///   le                a plain load: silicon without the paper's LE/ST
///                     extension has no link register to arm
///   setlink           no-op, and the link-set branch is never taken, so
///                     the Fig. 3(b) l-mfence expansion falls through to
///                     its MFENCE arm. This is the *conservative
///                     strengthening*: on hardware without LE/ST support
///                     every l-mfence degrades to store+mfence, and each
///                     native execution corresponds to a model execution
///                     in which every link happened to break — so native
///                     outcomes remain a subset of the model's reachable
///                     set (the soundness direction xval checks).
///
/// Each iteration releases all roles from a sense-reversing barrier with
/// a small per-role random skew (maximising the overlap window in which
/// TSO reorderings are observable), runs every role to halt, and captures
/// the terminal observation (observation.hpp) after a full-fence join.
/// Role 0's thread doubles as the per-iteration reset/collect thread so a
/// 2-role litmus saturates a 2-core host instead of idling behind a
/// coordinator thread.

#include <cstdint>
#include <map>
#include <string>

#include "lbmf/sim/assembler.hpp"
#include "lbmf/xval/observation.hpp"

namespace lbmf::xval {

struct NativeOptions {
  /// Stress iterations (each is one fresh run of the whole litmus).
  std::uint64_t iterations = 100'000;
  /// Per-role executed-instruction budget per iteration. A role exceeding
  /// it is *wedged* (a blocked `lock` whose owner never unlocks, or a
  /// runaway loop); the iteration is counted in wedged_iterations and its
  /// outcome discarded rather than risking a spurious soundness verdict
  /// from a timeout heuristic.
  std::uint64_t step_budget = 100'000;
  /// Seed for the per-role skew RNG (deterministic given seed + role).
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  /// Pin role i to CPU i mod online_cpus(). Keeps roles on distinct cores
  /// (where the distinct store buffers live) when the host has them.
  bool pin_threads = true;
  /// Upper bound on the random pre-iteration skew, in PAUSE spins.
  std::uint32_t max_skew = 64;
};

struct NativeResult {
  /// Terminal observation -> number of iterations that produced it.
  std::map<std::string, std::uint64_t> observed;
  std::uint64_t iterations = 0;
  std::uint64_t wedged_iterations = 0;
};

/// Whether this host can run a meaningful native leg: an x86-64 build
/// (the simulator models x86-TSO; weaker hosts would observe outcomes the
/// model rightly forbids) with at least 2 online CPUs (a single core
/// cannot overlap two store buffers, so every interesting reordering is
/// unobservable and the run would be vacuous). On refusal, `reason` (if
/// non-null) explains — callers are expected to skip *loudly*.
bool native_host_supported(std::size_t roles, std::string* reason = nullptr);

/// Run the litmus natively. Aborts (LBMF_CHECK) on a program that cannot
/// be realized natively (checked by compile_native below) — call
/// native_host_supported() first; this function does not re-probe the
/// host, so tests can exercise it on any machine.
NativeResult run_native(const sim::AssembleResult& lit,
                        const ObservationSchema& schema,
                        const NativeOptions& opts = {});

}  // namespace lbmf::xval
