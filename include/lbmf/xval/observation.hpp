#pragma once

/// The shared terminal-observation projection of lbmf::xval.
///
/// A cross-validation run compares two executions of the same litmus
/// program — one exhaustive (the LE/ST simulator's explorer) and one
/// native (real threads over real shared memory on x86-TSO). The only
/// thing the two worlds can be compared on is the *architecturally
/// observable terminal state*: the final value of every register the
/// program can write, plus the final (coherent) value of every shared
/// location it touches. This header defines that projection once, as a
/// schema derived from the assembled litmus, so the simulator side and
/// the native side format byte-identical observation strings and set
/// containment (observed ⊆ reachable) is plain string-set containment.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "lbmf/sim/assembler.hpp"
#include "lbmf/sim/types.hpp"

namespace lbmf::xval {

/// What one terminal observation of a litmus consists of: which registers
/// each CPU can ever write (the simulator's regs_written_mask, recomputed
/// here from the program text so the native runner needs no Machine), and
/// every shared location the program references, in ascending address
/// order with its symbolic name when the litmus gave it one.
struct ObservationSchema {
  /// Bit r set iff programs[cpu] contains an instruction writing reg r.
  std::vector<std::uint8_t> reg_masks;
  /// (address, display name), ascending by address. Covers every address
  /// referenced by any instruction or `init` directive.
  std::vector<std::pair<sim::Addr, std::string>> locations;

  static ObservationSchema from(const sim::AssembleResult& lit);

  /// Format one observation. `reg(cpu, r)` and `mem(addr)` supply the
  /// terminal values; `stuck(cpu)` reports a CPU that can no longer step
  /// but never reached halt (a blocked `lock` — the simulator's deadlock;
  /// natively, a step-budget overrun). The output is deterministic:
  ///   "cpu0{r0=0 r1=1} cpu1!{r0=2} mem{x=1 y=0}"
  /// where `!` marks a stuck CPU.
  template <typename RegFn, typename MemFn, typename StuckFn>
  std::string format(RegFn&& reg, MemFn&& mem, StuckFn&& stuck) const {
    std::string out;
    out.reserve(16 * (reg_masks.size() + 1));
    for (std::size_t c = 0; c < reg_masks.size(); ++c) {
      if (c != 0) out += ' ';
      out += "cpu";
      out += std::to_string(c);
      if (stuck(c)) out += '!';
      out += '{';
      bool first = true;
      for (unsigned r = 0; r < 8; ++r) {
        if ((reg_masks[c] & (1u << r)) == 0) continue;
        if (!first) out += ' ';
        first = false;
        out += 'r';
        out += static_cast<char>('0' + r);
        out += '=';
        out += std::to_string(static_cast<long long>(reg(c, r)));
      }
      out += '}';
    }
    out += " mem{";
    bool first = true;
    for (const auto& [addr, name] : locations) {
      if (!first) out += ' ';
      first = false;
      out += name;
      out += '=';
      out += std::to_string(static_cast<long long>(mem(addr)));
    }
    out += '}';
    return out;
  }
};

}  // namespace lbmf::xval
