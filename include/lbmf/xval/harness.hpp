#pragma once

/// The cross-validation harness: diff native executions of a litmus
/// against the simulator's exhaustively enumerated reachable set.
///
/// Soundness direction. The simulator claims to model x86-TSO; the
/// explorer enumerates *every* schedule of the litmus, so the set of
/// reachable terminal observations is the model's complete prediction of
/// what silicon may produce. A native observation outside that set
/// (observed ⊄ reachable) means real hardware exhibited a behaviour the
/// model says is impossible — a model-soundness failure, and the one
/// verdict this harness treats as an error. The converse direction is
/// *coverage*, not error: reachable outcomes never observed natively just
/// mean the stress run didn't hit that interleaving (or the host cannot —
/// e.g. simulated drain timings with no native analogue).
///
/// Violation witnesses. An outcome is *violating* when some execution
/// reaching it passes through a state that violates the litmus property
/// (two CPUs in the critical section, or a failed `final` directive).
/// This is deliberately outcome-level: broken Dekker's both-entered
/// terminal state is also reachable by a schedule whose critical sections
/// are disjoint in simulator time, so "reachable minus safe" would miss
/// it; instead the harness collects every violating state from a checked
/// exploration and re-explores forward from each, unchecked, to find the
/// terminal outcomes violations can produce. Natively observing one of
/// those is the hardware reproducing the model's counterexample family —
/// required of the broken_* litmus, forbidden (by SAFE verdicts +
/// soundness) of the fenced ones.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lbmf/sim/assembler.hpp"
#include "lbmf/xval/native.hpp"
#include "lbmf/xval/observation.hpp"

namespace lbmf::xval {

/// The simulator's outcome sets for one litmus.
struct ReachableSets {
  /// Every terminal observation of the full (uncheck­ed) schedule graph.
  std::set<std::string> reachable;
  /// Terminal observations of the checked graph (violating states pruned).
  std::set<std::string> safe;
  /// Terminal observations reachable through at least one violating state.
  std::set<std::string> violating;
  std::uint64_t states_explored = 0;
  std::uint64_t violating_states = 0;
  /// False when any exploration hit its state limit (sets may be partial,
  /// so containment verdicts are inconclusive rather than failures).
  bool complete = true;
  /// First property violation the checked run reported (diagnostic).
  std::string violation;
};

/// Exhaustively compute the reachable / safe / violating outcome sets.
/// Thread-symmetry reduction is deliberately NOT enabled: canonicalizing
/// permuted CPUs would merge outcome strings the native runner keeps
/// distinct, and xval litmus are small enough for the exact graph.
ReachableSets compute_reachable(const sim::AssembleResult& lit,
                                const ObservationSchema& schema,
                                std::uint64_t max_states = 2'000'000);

struct XvalOptions {
  NativeOptions native;
  std::uint64_t max_states = 2'000'000;
};

/// One cross-validation verdict, serializable as XVAL_*.json.
struct XvalReport {
  std::string litmus;

  // Host.
  std::string arch;
  std::size_t online_cpus = 0;
  bool skipped = false;       ///< native leg not run (unsupported host)
  std::string skip_reason;

  // Simulator side.
  ReachableSets sim;

  // Native side.
  std::map<std::string, std::uint64_t> observed;
  std::uint64_t iterations = 0;
  std::uint64_t wedged_iterations = 0;

  // The diff.
  std::vector<std::string> unexplained;  ///< observed \ reachable — errors
  std::vector<std::string> unobserved;   ///< reachable \ observed — coverage
  /// Iterations whose outcome lies in sim.violating: the hardware
  /// witnessing the model's counterexample family.
  std::uint64_t violations_observed = 0;

  /// observed ⊆ reachable (vacuously true when the native leg skipped).
  bool model_sound() const noexcept { return unexplained.empty(); }
  /// All native verdict inputs are trustworthy: sim sets complete and no
  /// iteration wedged.
  bool conclusive() const noexcept {
    return sim.complete && wedged_iterations == 0;
  }
  double coverage() const noexcept {
    if (sim.reachable.empty()) return 1.0;
    return static_cast<double>(sim.reachable.size() - unobserved.size()) /
           static_cast<double>(sim.reachable.size());
  }
};

/// Pure differ over precomputed halves — what xval_test feeds a
/// deliberately-weakened model through.
XvalReport diff_outcomes(std::string litmus_name, const NativeResult& native,
                         const ReachableSets& sim);

/// The whole pipeline: schema, simulator sets, host probe, native stress
/// run (skipped with a recorded reason on unsupported hosts), diff.
XvalReport cross_validate(std::string litmus_name,
                          const sim::AssembleResult& lit,
                          const XvalOptions& opts = {});

/// Serialize a report as the XVAL_*.json artifact schema.
std::string to_json(const XvalReport& r);

}  // namespace lbmf::xval
