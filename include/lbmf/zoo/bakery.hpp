#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "lbmf/core/policies.hpp"
#include "lbmf/util/cacheline.hpp"
#include "lbmf/util/check.hpp"
#include "lbmf/util/spin.hpp"

namespace lbmf::zoo {

/// N-thread Lamport bakery with a location-fenced fast path for thread 0
/// (the runtime counterpart of `examples/litmus/bakery.lit`). Thread 0 is
/// the primary: both of its protected stores — the choosing announce and
/// the ticket publish — take `P::primary_fence()`, i.e. an l-mfence whose
/// link rides the stored location, so a peer's read of either word is what
/// drains the primary's store buffer. Secondaries pay a full fence in
/// their doorway, exactly as in the litmus.
///
/// The litmus teaches where the fences must ride: a fence on the doorway
/// *close* (choosing=0) orders nothing, because its link would fire on
/// reads of the choosing word while every peer decision that matters reads
/// the *ticket*. Both the announce and the publish therefore carry their
/// own fence, and the close stays a plain release store (a stale choosing
/// flag only delays peers — conservative).
///
/// Ties break on thread id, so the primary (id 0) wins every tie — the
/// same bias that let the inferencer drop the fence from the litmus's
/// ticket-1 path. The runtime keeps the fence on every publish: tickets
/// here are unbounded, so no path is provably tie-only.
///
/// Tickets are 64-bit monotone counters (`1 + max`), never reset. The
/// (ticket, id) ordering in scan() assumes tickets do not wrap; a 32-bit
/// ticket would wrap after 2^32 acquisitions under sustained contention
/// and silently break mutual exclusion, whereas exhausting 2^64 takes
/// centuries at one acquisition per nanosecond — out of scope by design.
template <FencePolicy P, std::size_t N>
class BakeryLock {
  static_assert(N >= 2, "a one-thread bakery needs no lock");

 public:
  using Policy = P;
  static constexpr std::size_t kThreads = N;

  BakeryLock() = default;
  BakeryLock(const BakeryLock&) = delete;
  BakeryLock& operator=(const BakeryLock&) = delete;

  /// Register thread 0 as the primary; bind before secondaries run, unbind
  /// after they quiesce, both on the primary thread.
  void bind_primary() {
    LBMF_CHECK_MSG(!bound_, "BakeryLock primary already bound");
    handle_ = P::register_primary();
    bound_ = true;
  }

  void unbind_primary() {
    if (bound_) {
      P::unregister_primary(handle_);
      bound_ = false;
    }
  }

  ~BakeryLock() { LBMF_CHECK_MSG(!bound_, "unbind_primary not called"); }

  /// The registered primary's policy handle (valid between bind/unbind).
  typename P::Handle primary_handle() const noexcept { return handle_; }

  /// Acquire as thread `id` (0 = primary). Each id must be used by at most
  /// one thread at a time.
  void lock(std::size_t id) {
    LBMF_CHECK_MSG(id < N, "BakeryLock thread id out of range");
    if (id == 0) {
      lock_primary();
    } else {
      lock_secondary(id);
    }
  }

  void unlock(std::size_t id) noexcept {
    number_[id]->store(0, std::memory_order_release);
  }

 private:
  void lock_primary() noexcept {
    compiler_fence();
    choosing_[0]->store(1, std::memory_order_relaxed);
    P::primary_fence();  // announce must reach peers' scans before our reads
    const std::uint64_t ticket = 1 + max_number();
    number_[0]->store(ticket, std::memory_order_relaxed);
    P::primary_fence();  // ticket must reach peers' doorways and scans
    choosing_[0]->store(0, std::memory_order_release);  // plain close
    scan(0, ticket, /*serialize_primary=*/false);
  }

  void lock_secondary(std::size_t id) {
    choosing_[id]->store(1, std::memory_order_relaxed);
    P::secondary_fence();
    const std::uint64_t ticket = 1 + max_number();
    number_[id]->store(ticket, std::memory_order_relaxed);
    P::secondary_fence();
    choosing_[id]->store(0, std::memory_order_release);
    scan(id, ticket, /*serialize_primary=*/true);
  }

  std::uint64_t max_number() const noexcept {
    std::uint64_t m = 0;
    for (std::size_t j = 0; j < N; ++j) {
      const std::uint64_t n = number_[j]->load(std::memory_order_acquire);
      if (n > m) m = n;
    }
    return m;
  }

  // Wait until every peer with a smaller (ticket, id) pair has left. The
  // secondaries serialize the primary once on entry — the runtime analogue
  // of the single mfence the litmus's cold side pays — so a buffered
  // primary announce or ticket is in memory before the comparisons run.
  void scan(std::size_t id, std::uint64_t ticket, bool serialize_primary) {
    if (serialize_primary) P::serialize(handle_);
    for (std::size_t j = 0; j < N; ++j) {
      if (j == id) continue;
      SpinWait c;
      while (choosing_[j]->load(std::memory_order_acquire) != 0) c.wait();
      SpinWait w;
      for (;;) {
        const std::uint64_t n = number_[j]->load(std::memory_order_acquire);
        if (n == 0 || n > ticket || (n == ticket && j > id)) break;
        w.wait();
      }
    }
  }

  CacheAligned<std::atomic<unsigned>> choosing_[N];
  CacheAligned<std::atomic<std::uint64_t>> number_[N];
  typename P::Handle handle_{};
  bool bound_ = false;
};

}  // namespace lbmf::zoo

#if defined(LBMF_EXTRACT) && LBMF_EXTRACT
#include "lbmf/extract/annotate.hpp"

namespace lbmf::zoo {

/// The bakery protocol above, annotated for lbmf::extract with a
/// role-count parameter: one hot customer (id 0, wins ties) against
/// `contenders` rare challengers stamped out from a single parameterized
/// body via LBMF_ROLES — the contenders gate on [G] and share one bakery
/// slot ([C1]/[N1]), so their recorded programs are byte-identical and
/// the recorder declares them symmetric automatically.
///
/// Tickets are computed (1 if the peer slot is empty, else 2 — the
/// single-attempt litmus reduction of `1 + max`), every protocol store is
/// a `?fence` hole, and the doorway close stays a plain store (see
/// examples/litmus/bakery_holes.lit, which
/// `lbmf_extract bakery` regenerates from this function).
inline extract::Spec record_bakery_protocol(std::size_t contenders = 2) {
  using namespace extract;
  Recorder rec("bakery");

  auto hot = LBMF_ROLE(rec, "customer", 1000);
  LBMF_FENCE_HOLE(hot, "C0", 1);      // announce choosing
  LBMF_LOAD(hot, r1, "N1");           // doorway: peer holding a ticket?
  LBMF_BEQ(hot, r1, 0, "t1");
  LBMF_MOV(hot, r2, 2);
  LBMF_FENCE_HOLE(hot, "N0", 2);      // publish ticket 2
  LBMF_JMP(hot, "close");
  LBMF_LABEL(hot, "t1");
  LBMF_MOV(hot, r2, 1);
  LBMF_FENCE_HOLE(hot, "N0", 1);      // publish ticket 1
  LBMF_LABEL(hot, "close");
  LBMF_STORE(hot, "C0", 0);           // plain close: stale 1 only delays
  LBMF_LOAD(hot, r3, "C1");
  LBMF_BNE(hot, r3, 0, "skip");       // peer mid-doorway: bail
  LBMF_LOAD(hot, r4, "N1");
  LBMF_BEQ(hot, r4, 0, "enter");      // nobody competing
  LBMF_BEQ(hot, r2, 1, "enter");      // ticket 1: id 0 wins every tie
  LBMF_BEQ(hot, r4, 2, "enter");      // 2 vs 2: tie, id 0 wins
  LBMF_JMP(hot, "skip");              // my 2 vs their 1: lose
  LBMF_LABEL(hot, "enter");
  LBMF_CRITICAL(hot);
  LBMF_LABEL(hot, "skip");
  LBMF_STORE(hot, "N0", 0);           // hand the ticket back
  LBMF_HALT(hot);

  LBMF_ROLES(rec, "contender", contenders, 1,
             [](RoleRef& c, std::size_t) {
               LBMF_RMW_ACQUIRE(c, "G");
               LBMF_FENCE_HOLE(c, "C1", 1);  // announce choosing
               LBMF_LOAD(c, r1, "N0");
               LBMF_BEQ(c, r1, 0, "u1");
               LBMF_MOV(c, r2, 2);
               LBMF_FENCE_HOLE(c, "N1", 2);  // publish ticket 2
               LBMF_JMP(c, "uclose");
               LBMF_LABEL(c, "u1");
               LBMF_MOV(c, r2, 1);
               LBMF_FENCE_HOLE(c, "N1", 1);  // publish ticket 1
               LBMF_LABEL(c, "uclose");
               LBMF_STORE(c, "C1", 0);       // close the doorway
               LBMF_LOAD(c, r3, "C0");
               LBMF_BNE(c, r3, 0, "cskip");  // hot mid-doorway: bail
               LBMF_LOAD(c, r4, "N0");
               LBMF_BEQ(c, r4, 0, "center"); // hot not competing
               LBMF_BNE(c, r2, 1, "cskip");  // my 2 never strictly wins
               LBMF_BEQ(c, r4, 2, "center"); // my 1 vs their 2: smaller
               LBMF_JMP(c, "cskip");         // 1 vs 1: tie, hot wins
               LBMF_LABEL(c, "center");
               LBMF_CRITICAL(c);
               LBMF_LABEL(c, "cskip");
               LBMF_STORE(c, "N1", 0);
               LBMF_RMW_RELEASE(c, "G");
               LBMF_HALT(c);
             });
  return std::move(rec).take();
}

}  // namespace lbmf::zoo
#endif  // LBMF_EXTRACT
