#pragma once

#include <atomic>

#include "lbmf/core/fence.hpp"
#include "lbmf/core/policies.hpp"
#include "lbmf/util/cacheline.hpp"
#include "lbmf/util/check.hpp"
#include "lbmf/util/spin.hpp"

namespace lbmf::zoo {

/// A futex-style sleeping mutex whose *unlock* fast path is location-fenced
/// (the runtime counterpart of `examples/litmus/futex_mutex.lit`). The
/// classic futex protocol orders unlock's release store against the
/// waiter-count check with a full barrier — on every release, contended or
/// not. Here the designated owner thread releases with only
/// `P::primary_fence()` (an l-mfence linked to the mutex word): a waiter's
/// re-check of the word is what drains the owner's store buffer, so the
/// uncontended release pays no serializing instruction at all.
///
/// Acquisition is symmetric — the announce is a locked RMW (full barrier
/// on x86) either way, so there is nothing for an l-mfence to save on the
/// lock side. A waiter registers in waiters_, serializes the owner
/// (`P::serialize`), and re-checks before sleeping on the C++20 atomic
/// wait/notify facility, which stands in for FUTEX_WAIT/FUTEX_WAKE.
///
/// The contended release re-fences *before* notifying: once a waiter is
/// registered, the release store must be globally visible before the wake
/// is issued, or a waiter could pass the kernel's compare against the
/// stale locked value after the only wake has already fired. That full
/// fence rides the slow path only — the hot path's entire win is keeping
/// the uncontended release fence-free.
template <FencePolicy P>
class FutexMutex {
 public:
  using Policy = P;

  FutexMutex() = default;
  FutexMutex(const FutexMutex&) = delete;
  FutexMutex& operator=(const FutexMutex&) = delete;

  /// Register the calling thread as the owner (the thread whose unlocks go
  /// through the location-fenced fast path); bind before secondaries run,
  /// unbind after they quiesce, both on the owner thread.
  void bind_primary() {
    LBMF_CHECK_MSG(!bound_, "FutexMutex primary already bound");
    handle_ = P::register_primary();
    bound_ = true;
  }

  void unbind_primary() {
    if (bound_) {
      P::unregister_primary(handle_);
      bound_ = false;
    }
  }

  ~FutexMutex() { LBMF_CHECK_MSG(!bound_, "unbind_primary not called"); }

  /// The registered owner's policy handle (valid between bind/unbind).
  typename P::Handle primary_handle() const noexcept { return handle_; }

  void lock_primary() noexcept { acquire(); }
  void lock_secondary() { acquire(); }

  void unlock_primary() noexcept {
    word_->store(0, std::memory_order_relaxed);
    P::primary_fence();
    if (waiters_->load(std::memory_order_acquire) != 0) wake();
  }

  void unlock_secondary() noexcept {
    word_->store(0, std::memory_order_relaxed);
    P::secondary_fence();
    if (waiters_->load(std::memory_order_acquire) != 0) wake();
  }

 private:
  void acquire() noexcept {
    // Fast path: uncontended exchange (a locked RMW, so no extra fence).
    if (word_->exchange(1, std::memory_order_acquire) == 0) return;
    waiters_->fetch_add(1, std::memory_order_seq_cst);
    for (;;) {
      if (word_->exchange(1, std::memory_order_acquire) == 0) break;
      // Serialize the owner before committing to sleep: its buffered
      // release must be in memory, or we would sleep on a stale 1 after
      // the owner's (only) wake has come and gone.
      P::serialize(handle_);
      if (word_->load(std::memory_order_acquire) != 0) {
        word_->wait(1, std::memory_order_acquire);
      }
    }
    waiters_->fetch_sub(1, std::memory_order_relaxed);
  }

  void wake() noexcept {
    // The release store must be visible before the wake (see class
    // comment); contention is the rare path, so the full fence is cheap.
    store_load_fence();
    word_->notify_one();
  }

  CacheAligned<std::atomic<int>> word_;     // 0 = free, 1 = held
  CacheAligned<std::atomic<int>> waiters_;  // registered sleepers
  typename P::Handle handle_{};
  bool bound_ = false;
};

}  // namespace lbmf::zoo
