#pragma once

// The mutex zoo: classic mutual-exclusion algorithms rebuilt around a
// location-based fence on their hot path, each paired with a litmus test
// in examples/litmus/ (a `*_holes.lit` the inferencer repairs, and the
// repaired variant checked in next to it) and cross-validated against
// real x86-TSO hardware by scripts/ci/run_xval_gates.sh.
//
//   AsymmetricPeterson  (lbmf/dekker/peterson.hpp) — peterson_lmfence.lit
//   BakeryLock          — bakery.lit / bakery_holes.lit
//   BiasedSpinlock      — spinlock.lit / spinlock_holes.lit
//   FutexMutex          — futex_mutex.lit / futex_holes.lit

#include "lbmf/dekker/peterson.hpp"
#include "lbmf/zoo/bakery.hpp"
#include "lbmf/zoo/futex_mutex.hpp"
#include "lbmf/zoo/spinlock.hpp"
