#pragma once

#include <atomic>

#include "lbmf/core/policies.hpp"
#include "lbmf/util/cacheline.hpp"
#include "lbmf/util/check.hpp"
#include "lbmf/util/spin.hpp"

namespace lbmf::zoo {

/// An unfair, owner-biased spinlock (the runtime counterpart of
/// `examples/litmus/spinlock.lit`). One distinguished owner thread barges
/// on its fast path with a Dekker-style announce-then-check on [owner_] /
/// [contender_]; everyone else serializes on an internal gate and claims
/// from the other side. Unfairness is structural: the owner announces and
/// *never retreats* — on a collision it simply spins until the contender
/// backs off, so the owner wins every race it joins. Contenders do the
/// announce-retreat loop, which is what makes the pair deadlock-free.
///
/// The fence placement is the inferred minimum from `spinlock_holes.lit`:
/// l-mfence on the owner's announce (the location link rides [owner_]; a
/// contender's read of it is what drains the owner's store buffer) and a
/// full fence on each contender's announce.
template <FencePolicy P>
class BiasedSpinlock {
 public:
  using Policy = P;

  BiasedSpinlock() = default;
  BiasedSpinlock(const BiasedSpinlock&) = delete;
  BiasedSpinlock& operator=(const BiasedSpinlock&) = delete;

  /// Register the calling thread as the owner; same lifetime contract as
  /// AsymmetricDekker (bind before contenders run, unbind after they
  /// quiesce, both on the owner thread).
  void bind_primary() {
    LBMF_CHECK_MSG(!bound_, "BiasedSpinlock primary already bound");
    handle_ = P::register_primary();
    bound_ = true;
  }

  void unbind_primary() {
    if (bound_) {
      P::unregister_primary(handle_);
      bound_ = false;
    }
  }

  ~BiasedSpinlock() { LBMF_CHECK_MSG(!bound_, "unbind_primary not called"); }

  /// The registered owner's policy handle (valid between bind/unbind).
  typename P::Handle primary_handle() const noexcept { return handle_; }

  void lock_primary() noexcept {
    compiler_fence();
    owner_->store(1, std::memory_order_relaxed);
    P::primary_fence();
    SpinWait w;
    while (contender_->load(std::memory_order_acquire) != 0) w.wait();
  }

  void unlock_primary() noexcept {
    owner_->store(0, std::memory_order_release);
  }

  void lock_secondary() {
    // Contenders compete with each other on the gate first, so at most one
    // of them races the owner on the announce words.
    SpinWait g;
    while (gate_->exchange(1, std::memory_order_acquire) != 0) g.wait();
    for (;;) {
      contender_->store(1, std::memory_order_relaxed);
      P::secondary_fence();
      P::serialize(handle_);  // expose the owner's buffered announce
      if (owner_->load(std::memory_order_acquire) == 0) return;
      // Collision: retreat so the (never-retreating) owner can proceed,
      // then wait out the owner's critical section before re-announcing.
      contender_->store(0, std::memory_order_release);
      SpinWait w;
      while (owner_->load(std::memory_order_acquire) != 0) w.wait();
    }
  }

  void unlock_secondary() noexcept {
    contender_->store(0, std::memory_order_release);
    gate_->store(0, std::memory_order_release);
  }

 private:
  CacheAligned<std::atomic<int>> owner_;
  CacheAligned<std::atomic<int>> contender_;
  CacheAligned<std::atomic<int>> gate_;
  typename P::Handle handle_{};
  bool bound_ = false;
};

}  // namespace lbmf::zoo
