#pragma once

/// The lbmf::extract map-back pass: lift an lbmf::infer placement over an
/// extracted litmus file back onto the runtime source it was recorded
/// from. Each `?fence` hole in a generated `.lit` carries a
/// `#@ file:line` provenance comment; the assembler parses it onto the
/// hole, problem_from_source copies it onto the FenceSite, and this pass
/// renders the winning assignment as compiler-style source diagnostics
/// ("lbmf/ws/deque.hpp:84: l-mfence") plus a machine-readable JSON
/// report for the CI gate.

#include <string>
#include <vector>

#include "lbmf/infer/engine.hpp"
#include "lbmf/infer/sites.hpp"

namespace lbmf::extract {

/// One inferred fence decision, located in the runtime source.
struct SourcePlacement {
  std::size_t site = 0;       // index into InferProblem::sites
  std::string site_label;     // e.g. "cpu0@0[T]=0"
  std::string source;         // "lbmf/ws/deque.hpp:84", empty if unknown
  std::string fence;          // "none" | "mfence" | "l-mfence"
  std::size_t lit_line = 0;   // 1-based line in the generated .lit
};

/// Map an assignment's per-site fence kinds back to source locations.
/// Sites without provenance get an empty `source` (the .lit line still
/// identifies them).
std::vector<SourcePlacement> map_back(const infer::InferProblem& p,
                                      const infer::Assignment& a);

/// Compiler-diagnostic rendering, one line per site:
///   lbmf/ws/deque.hpp:84: l-mfence  (cpu0@0[T]=0)
std::string format_source_placements(
    const std::vector<SourcePlacement>& placements);

/// The full extract-mode JSON report: inference stats + placement +
/// source_map, for run_extract_gates.sh and artifact upload.
std::string extract_report_json(const std::string& protocol,
                                const infer::InferProblem& p,
                                const infer::InferResult& r);

}  // namespace lbmf::extract
