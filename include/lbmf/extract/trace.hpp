#pragma once

/// lbmf::extract — the recorded-trace data model and the recording
/// harness behind the annotation macros (annotate.hpp).
///
/// A protocol spec is recorded, not parsed: running an annotated role
/// function once appends one RecordedOp per macro call, with the source
/// file:line of the annotation as provenance. Branches are recorded as
/// instructions (they are not executed as C++ control flow), so a single
/// run captures the whole per-thread program shape the emitter
/// (emit.hpp) later canonicalizes into a `.lit` file.

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lbmf::extract {

/// The simulated registers the annotation subset may name (the `.lit`
/// language's r0..r7). The emitter renumbers them by first use per role,
/// so annotations are free to pick mnemonic registers.
enum Reg : std::uint8_t { r0 = 0, r1, r2, r3, r4, r5, r6, r7 };

/// Where an annotation physically lives in the runtime source — the
/// provenance the whole pipeline carries: emitted as `#@ file:line`
/// comments in the generated `.lit`, parsed back by the assembler, and
/// reported by the map-back pass as `deque.hpp:NN: l-mfence`.
struct SourceLoc {
  std::string file;
  std::size_t line = 0;

  bool known() const noexcept { return !file.empty() && line != 0; }
};

/// One recorded annotation. The kinds mirror the `.lit` instruction set
/// (docs/LITMUS.md); kRmwAcquire/kRmwRelease are the locked-RMW gate
/// (`lock`/`unlock`), kFenceHole is a `?fence` site left for lbmf::infer.
enum class OpKind : std::uint8_t {
  kLoad,        // load rN, [loc]
  kStore,       // store [loc], v
  kStoreReg,    // store [loc], rN
  kMfence,      // mfence
  kLmfence,     // lmfence [loc], v
  kFenceHole,   // ?fence [loc], v
  kRmwAcquire,  // lock [loc]
  kRmwRelease,  // unlock [loc]
  kMov,         // mov rN, v
  kAdd,         // add rN, v
  kBranchEq,    // beq rN, v, label
  kBranchNe,    // bne rN, v, label
  kJump,        // jmp label
  kLabel,       // label:
  kCsEnter,     // cs_enter
  kCsExit,      // cs_exit
  kDelay,       // delay v
  kHalt,        // halt
};

const char* to_string(OpKind k) noexcept;

struct RecordedOp {
  OpKind kind{};
  Reg reg = r0;
  std::string loc;    // symbolic location name, e.g. "T"
  long long value = 0;
  std::string label;  // branch target / label name (role-local)
  SourceLoc src;
};

/// One annotated thread role — emitted as one `cpu N:` section, in
/// declaration order.
struct RoleTrace {
  std::string name;
  double freq = 1.0;
  SourceLoc src;  // where the role was declared
  std::vector<RecordedOp> ops;
};

/// A whole recorded protocol: the input to the emitter.
struct Spec {
  std::string name;
  std::vector<RoleTrace> roles;
  /// `init [loc], v` directives, in recording order.
  std::vector<std::pair<std::string, long long>> inits;
  /// `final` disjunction: each entry is one conjunction of (loc, value).
  std::vector<std::vector<std::pair<std::string, long long>>> finals;
  /// `symmetric` groups, by role name.
  std::vector<std::vector<std::string>> symmetric;
};

class Recorder;

/// Value handle to one role of a Recorder. A handle (rather than a
/// reference into Recorder's role vector) so that declaring further roles
/// never invalidates it — the Chase-Lev spec records its two symmetric
/// thieves by calling the same annotation lambda twice.
class RoleRef {
 public:
  RoleRef(Recorder* rec, std::size_t index) : rec_(rec), index_(index) {}

  RoleRef& load(Reg reg, std::string loc, SourceLoc src = {});
  RoleRef& store(std::string loc, long long v, SourceLoc src = {});
  RoleRef& store_reg(std::string loc, Reg reg, SourceLoc src = {});
  RoleRef& fence_hole(std::string loc, long long v, SourceLoc src = {});
  RoleRef& mfence(SourceLoc src = {});
  RoleRef& lmfence(std::string loc, long long v, SourceLoc src = {});
  RoleRef& rmw_acquire(std::string loc, SourceLoc src = {});
  RoleRef& rmw_release(std::string loc, SourceLoc src = {});
  RoleRef& mov(Reg reg, long long v, SourceLoc src = {});
  RoleRef& add(Reg reg, long long v, SourceLoc src = {});
  RoleRef& branch_eq(Reg reg, long long v, std::string label,
                     SourceLoc src = {});
  RoleRef& branch_ne(Reg reg, long long v, std::string label,
                     SourceLoc src = {});
  RoleRef& jump(std::string label, SourceLoc src = {});
  RoleRef& label(std::string name, SourceLoc src = {});
  RoleRef& cs_enter(SourceLoc src = {});
  RoleRef& cs_exit(SourceLoc src = {});
  /// cs_enter immediately followed by cs_exit — "this is the guarded
  /// work", the shape every shipped protocol uses.
  RoleRef& critical(SourceLoc src = {});
  RoleRef& delay(long long cycles, SourceLoc src = {});
  RoleRef& halt(SourceLoc src = {});

 private:
  RoleRef& emit(RecordedOp op);

  Recorder* rec_;
  std::size_t index_;
};

/// The recording harness: annotated spec functions receive a Recorder&,
/// declare roles, and replay their protocol once through the macros.
class Recorder {
 public:
  explicit Recorder(std::string spec_name) { spec_.name = std::move(spec_name); }

  RoleRef role(std::string name, double freq, SourceLoc src = {}) {
    RoleTrace r;
    r.name = std::move(name);
    r.freq = freq;
    r.src = std::move(src);
    spec_.roles.push_back(std::move(r));
    return RoleRef(this, spec_.roles.size() - 1);
  }

  /// Declare `count` roles from one parameterized body: `fn(role, i)` runs
  /// once per i in [0, count), recording role `<prefix><i+1>` (1-based, to
  /// match the hand-written "writer1"/"writer2" convention). This is the
  /// role-count parameter for N-thread protocols like the bakery: the
  /// protocol body is written once and stamped out per contender. Roles
  /// whose recorded streams come out byte-identical — the shared-slot
  /// idiom, where every contender runs the same program over the same
  /// locations behind a gate — are declared `symmetric` automatically;
  /// bodies that vary with i (distinct locations, say) are left alone.
  template <typename Fn>
  void roles(const std::string& prefix, std::size_t count, double freq,
             Fn&& fn, SourceLoc src = {}) {
    const std::size_t first = spec_.roles.size();
    for (std::size_t i = 0; i < count; ++i) {
      RoleRef r = role(prefix + std::to_string(i + 1), freq, src);
      fn(r, i);
    }
    // Group identical bodies into symmetric declarations.
    std::vector<bool> grouped(count, false);
    for (std::size_t i = 0; i < count; ++i) {
      if (grouped[i]) continue;
      std::vector<std::string> group{spec_.roles[first + i].name};
      for (std::size_t j = i + 1; j < count; ++j) {
        if (grouped[j]) continue;
        if (same_ops(spec_.roles[first + i].ops, spec_.roles[first + j].ops)) {
          group.push_back(spec_.roles[first + j].name);
          grouped[j] = true;
        }
      }
      if (group.size() >= 2) spec_.symmetric.push_back(std::move(group));
    }
  }

  void init(std::string loc, long long v) {
    spec_.inits.emplace_back(std::move(loc), v);
  }

  /// One allowed terminal valuation, as alternating (loc, value) pairs:
  /// final_property("TK0", 1, "TK1", 0). Repeat for a disjunction.
  template <typename... Rest>
  void final_property(std::string loc, long long v, Rest&&... rest) {
    std::vector<std::pair<std::string, long long>> conj;
    collect_pairs(conj, std::move(loc), v, std::forward<Rest>(rest)...);
    spec_.finals.push_back(std::move(conj));
  }

  /// Declare two or more roles interchangeable (emitted as a
  /// `symmetric cpu` directive over their section indices).
  template <typename... Rest>
  void symmetric(std::string a, std::string b, Rest&&... rest) {
    std::vector<std::string> group;
    collect_names(group, std::move(a), std::move(b),
                  std::forward<Rest>(rest)...);
    spec_.symmetric.push_back(std::move(group));
  }

  const Spec& spec() const noexcept { return spec_; }
  Spec take() && { return std::move(spec_); }

 private:
  friend class RoleRef;

  static void collect_pairs(
      std::vector<std::pair<std::string, long long>>& out) {
    (void)out;
  }
  template <typename... Rest>
  static void collect_pairs(std::vector<std::pair<std::string, long long>>& out,
                            std::string loc, long long v, Rest&&... rest) {
    out.emplace_back(std::move(loc), v);
    collect_pairs(out, std::forward<Rest>(rest)...);
  }

  /// Structural equality of two recorded streams — provenance (src) is
  /// ignored, so the same body lambda recorded from different call sites
  /// still compares equal.
  static bool same_ops(const std::vector<RecordedOp>& a,
                       const std::vector<RecordedOp>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t k = 0; k < a.size(); ++k) {
      const RecordedOp& x = a[k];
      const RecordedOp& y = b[k];
      if (x.kind != y.kind || x.reg != y.reg || x.loc != y.loc ||
          x.value != y.value || x.label != y.label) {
        return false;
      }
    }
    return true;
  }

  static void collect_names(std::vector<std::string>& out) { (void)out; }
  template <typename... Rest>
  static void collect_names(std::vector<std::string>& out, std::string name,
                            Rest&&... rest) {
    out.push_back(std::move(name));
    collect_names(out, std::forward<Rest>(rest)...);
  }

  Spec spec_;
};

inline RoleRef& RoleRef::emit(RecordedOp op) {
  // The Recorder owns the storage; the handle only indexes into it.
  const_cast<Spec&>(rec_->spec()).roles[index_].ops.push_back(std::move(op));
  return *this;
}

inline RoleRef& RoleRef::load(Reg reg, std::string loc, SourceLoc src) {
  return emit({OpKind::kLoad, reg, std::move(loc), 0, {}, std::move(src)});
}
inline RoleRef& RoleRef::store(std::string loc, long long v, SourceLoc src) {
  return emit({OpKind::kStore, r0, std::move(loc), v, {}, std::move(src)});
}
inline RoleRef& RoleRef::store_reg(std::string loc, Reg reg, SourceLoc src) {
  return emit({OpKind::kStoreReg, reg, std::move(loc), 0, {}, std::move(src)});
}
inline RoleRef& RoleRef::fence_hole(std::string loc, long long v,
                                    SourceLoc src) {
  return emit({OpKind::kFenceHole, r0, std::move(loc), v, {}, std::move(src)});
}
inline RoleRef& RoleRef::mfence(SourceLoc src) {
  return emit({OpKind::kMfence, r0, {}, 0, {}, std::move(src)});
}
inline RoleRef& RoleRef::lmfence(std::string loc, long long v, SourceLoc src) {
  return emit({OpKind::kLmfence, r0, std::move(loc), v, {}, std::move(src)});
}
inline RoleRef& RoleRef::rmw_acquire(std::string loc, SourceLoc src) {
  return emit({OpKind::kRmwAcquire, r0, std::move(loc), 0, {}, std::move(src)});
}
inline RoleRef& RoleRef::rmw_release(std::string loc, SourceLoc src) {
  return emit({OpKind::kRmwRelease, r0, std::move(loc), 0, {}, std::move(src)});
}
inline RoleRef& RoleRef::mov(Reg reg, long long v, SourceLoc src) {
  return emit({OpKind::kMov, reg, {}, v, {}, std::move(src)});
}
inline RoleRef& RoleRef::add(Reg reg, long long v, SourceLoc src) {
  return emit({OpKind::kAdd, reg, {}, v, {}, std::move(src)});
}
inline RoleRef& RoleRef::branch_eq(Reg reg, long long v, std::string label,
                                   SourceLoc src) {
  return emit(
      {OpKind::kBranchEq, reg, {}, v, std::move(label), std::move(src)});
}
inline RoleRef& RoleRef::branch_ne(Reg reg, long long v, std::string label,
                                   SourceLoc src) {
  return emit(
      {OpKind::kBranchNe, reg, {}, v, std::move(label), std::move(src)});
}
inline RoleRef& RoleRef::jump(std::string label, SourceLoc src) {
  return emit({OpKind::kJump, r0, {}, 0, std::move(label), std::move(src)});
}
inline RoleRef& RoleRef::label(std::string name, SourceLoc src) {
  return emit({OpKind::kLabel, r0, {}, 0, std::move(name), std::move(src)});
}
inline RoleRef& RoleRef::cs_enter(SourceLoc src) {
  return emit({OpKind::kCsEnter, r0, {}, 0, {}, std::move(src)});
}
inline RoleRef& RoleRef::cs_exit(SourceLoc src) {
  return emit({OpKind::kCsExit, r0, {}, 0, {}, std::move(src)});
}
inline RoleRef& RoleRef::critical(SourceLoc src) {
  cs_enter(src);
  return cs_exit(std::move(src));
}
inline RoleRef& RoleRef::delay(long long cycles, SourceLoc src) {
  return emit({OpKind::kDelay, r0, {}, cycles, {}, std::move(src)});
}
inline RoleRef& RoleRef::halt(SourceLoc src) {
  return emit({OpKind::kHalt, r0, {}, 0, {}, std::move(src)});
}

}  // namespace lbmf::extract
