#pragma once

/// The lbmf::extract annotation layer: the macros a lightly annotated C++
/// subset uses to describe its fence protocol next to the real code.
///
/// Compiled with -DLBMF_EXTRACT=1, each macro appends one instruction to
/// a recording (trace.hpp), tagged with the annotation's own __FILE__ and
/// __LINE__ — the provenance that flows through the generated `.lit`
/// (`#@ file:line` comments), into lbmf::infer's fence sites, and back
/// out of the map-back pass as `deque.hpp:NN: l-mfence`. In any other
/// build every macro expands to `((void)0)`: the annotations cost nothing
/// and their arguments are never even looked at (extract_off_test.cpp
/// passes undeclared identifiers through them to prove it). The annotated
/// spec functions in the runtime headers are additionally fenced behind
/// `#if LBMF_EXTRACT_ENABLED`, so non-extract translation units carry no
/// recording symbols at all.
///
/// The annotation subset (see docs/LITMUS.md for the emitted grammar):
///
///   LBMF_ROLE(rec, "victim", 1000)        declare a thread role (freq)
///   LBMF_ROLES(rec, "thief", 2, 1, fn)    declare N roles from one body;
///                                         fn(role, i) runs per instance,
///                                         identical bodies auto-symmetric
///   LBMF_LOAD(role, r0, "H")              atomic load into a register
///   LBMF_STORE(role, "T", 0)              atomic store (immediate)
///   LBMF_STORE_REG(role, "T", r1)         atomic store (register)
///   LBMF_FENCE_HOLE(role, "T", 0)         store + `?fence` hole for infer
///   LBMF_MFENCE(role)                     full fence
///   LBMF_LMFENCE(role, "T", 0)            location-based fence (Fig. 3b)
///   LBMF_RMW_ACQUIRE(role, "G")           locked-RMW acquire (lock)
///   LBMF_RMW_RELEASE(role, "G")           locked-RMW release (unlock)
///   LBMF_MOV / LBMF_ADD(role, r0, 5)      register arithmetic
///   LBMF_LABEL(role, "claim")             role-local label
///   LBMF_BEQ / LBMF_BNE(role, r0, 0, "claim")  conditional branches
///   LBMF_JMP(role, "top")                 unconditional branch
///   LBMF_CRITICAL(role)                   cs_enter; cs_exit
///   LBMF_CRITICAL_ENTER / _EXIT(role)     the markers separately
///   LBMF_DELAY(role, 20)                  local work
///   LBMF_HALT(role)                       end of the role's program
///   LBMF_INIT(rec, "T", 1)                shared initial memory
///   LBMF_FINAL_PROPERTY(rec, "TK0", 1, "TK1", 0)  allowed terminal state
///   LBMF_SYMMETRIC(rec, "thief1", "thief2")       interchangeable roles

#include "lbmf/extract/trace.hpp"

#if defined(LBMF_EXTRACT) && LBMF_EXTRACT
#define LBMF_EXTRACT_ENABLED 1
#else
#define LBMF_EXTRACT_ENABLED 0
#endif

namespace lbmf::extract {

/// Whether this translation unit records annotations. Internal linkage,
/// so extract and non-extract TUs can disagree without an ODR clash.
constexpr bool kEnabled = LBMF_EXTRACT_ENABLED == 1;

}  // namespace lbmf::extract

#if LBMF_EXTRACT_ENABLED

#define LBMF_ANNOT_SRC_ \
  (::lbmf::extract::SourceLoc{__FILE__, static_cast<std::size_t>(__LINE__)})

#define LBMF_ROLE(rec, name, freq) ((rec).role((name), (freq), LBMF_ANNOT_SRC_))
#define LBMF_ROLES(rec, prefix, count, freq, fn) \
  ((rec).roles((prefix), (count), (freq), (fn), LBMF_ANNOT_SRC_))
#define LBMF_INIT(rec, loc, v) ((rec).init((loc), (v)))
#define LBMF_FINAL_PROPERTY(rec, ...) ((rec).final_property(__VA_ARGS__))
#define LBMF_SYMMETRIC(rec, ...) ((rec).symmetric(__VA_ARGS__))

#define LBMF_LOAD(role, reg, loc) ((role).load((reg), (loc), LBMF_ANNOT_SRC_))
#define LBMF_STORE(role, loc, v) ((role).store((loc), (v), LBMF_ANNOT_SRC_))
#define LBMF_STORE_REG(role, loc, reg) \
  ((role).store_reg((loc), (reg), LBMF_ANNOT_SRC_))
#define LBMF_FENCE_HOLE(role, loc, v) \
  ((role).fence_hole((loc), (v), LBMF_ANNOT_SRC_))
#define LBMF_MFENCE(role) ((role).mfence(LBMF_ANNOT_SRC_))
#define LBMF_LMFENCE(role, loc, v) \
  ((role).lmfence((loc), (v), LBMF_ANNOT_SRC_))
#define LBMF_RMW_ACQUIRE(role, loc) \
  ((role).rmw_acquire((loc), LBMF_ANNOT_SRC_))
#define LBMF_RMW_RELEASE(role, loc) \
  ((role).rmw_release((loc), LBMF_ANNOT_SRC_))
#define LBMF_MOV(role, reg, v) ((role).mov((reg), (v), LBMF_ANNOT_SRC_))
#define LBMF_ADD(role, reg, v) ((role).add((reg), (v), LBMF_ANNOT_SRC_))
#define LBMF_LABEL(role, name) ((role).label((name), LBMF_ANNOT_SRC_))
#define LBMF_BEQ(role, reg, v, target) \
  ((role).branch_eq((reg), (v), (target), LBMF_ANNOT_SRC_))
#define LBMF_BNE(role, reg, v, target) \
  ((role).branch_ne((reg), (v), (target), LBMF_ANNOT_SRC_))
#define LBMF_JMP(role, target) ((role).jump((target), LBMF_ANNOT_SRC_))
#define LBMF_CRITICAL(role) ((role).critical(LBMF_ANNOT_SRC_))
#define LBMF_CRITICAL_ENTER(role) ((role).cs_enter(LBMF_ANNOT_SRC_))
#define LBMF_CRITICAL_EXIT(role) ((role).cs_exit(LBMF_ANNOT_SRC_))
#define LBMF_DELAY(role, cycles) ((role).delay((cycles), LBMF_ANNOT_SRC_))
#define LBMF_HALT(role) ((role).halt(LBMF_ANNOT_SRC_))

#else  // LBMF_EXTRACT_ENABLED == 0: zero-cost passthrough.

#define LBMF_ROLE(...) ((void)0)
#define LBMF_ROLES(...) ((void)0)
#define LBMF_INIT(...) ((void)0)
#define LBMF_FINAL_PROPERTY(...) ((void)0)
#define LBMF_SYMMETRIC(...) ((void)0)
#define LBMF_LOAD(...) ((void)0)
#define LBMF_STORE(...) ((void)0)
#define LBMF_STORE_REG(...) ((void)0)
#define LBMF_FENCE_HOLE(...) ((void)0)
#define LBMF_MFENCE(...) ((void)0)
#define LBMF_LMFENCE(...) ((void)0)
#define LBMF_RMW_ACQUIRE(...) ((void)0)
#define LBMF_RMW_RELEASE(...) ((void)0)
#define LBMF_MOV(...) ((void)0)
#define LBMF_ADD(...) ((void)0)
#define LBMF_LABEL(...) ((void)0)
#define LBMF_BEQ(...) ((void)0)
#define LBMF_BNE(...) ((void)0)
#define LBMF_JMP(...) ((void)0)
#define LBMF_CRITICAL(...) ((void)0)
#define LBMF_CRITICAL_ENTER(...) ((void)0)
#define LBMF_CRITICAL_EXIT(...) ((void)0)
#define LBMF_DELAY(...) ((void)0)
#define LBMF_HALT(...) ((void)0)

#endif  // LBMF_EXTRACT_ENABLED
