#pragma once

/// lbmf::extract — litmus extraction from annotated runtime code.
///
/// The pipeline (see docs/ARCHITECTURE.md "From runtime code to litmus"):
///
///   runtime header      annotated spec function (LBMF_* macros)
///        |                       annotate.hpp
///        v
///   recorded Spec       per-role instruction streams + provenance
///        |                       trace.hpp
///        v
///   generated .lit      canonicalized, `#@ file:line` comments
///        |                       emit.hpp
///        v
///   lbmf::infer         `?fence` holes -> minimum-cost placement
///        |
///        v
///   source report       "lbmf/ws/deque.hpp:NN: l-mfence" + JSON
///                                mapback.hpp
///
/// The drift gate (scripts/ci/run_extract_gates.sh) closes the loop:
/// regenerate each protocol from its annotations, semantic-diff against
/// the committed hand-written litmus file, and re-run inference over the
/// *generated* text — so the annotations, the committed `.lit` and the
/// pinned placements can never drift apart silently.

#include "lbmf/extract/annotate.hpp"
#include "lbmf/extract/emit.hpp"
#include "lbmf/extract/mapback.hpp"
#include "lbmf/extract/trace.hpp"

#if LBMF_EXTRACT_ENABLED

#include "lbmf/rwlock/rwlock.hpp"
#include "lbmf/ws/chase_lev.hpp"
#include "lbmf/ws/deque.hpp"
#include "lbmf/zoo/bakery.hpp"

namespace lbmf::extract {

/// One annotated structure the extractor knows how to regenerate.
struct RegisteredProtocol {
  const char* key;        // CLI name, e.g. "the-deque"
  const char* committed;  // hand-written file under examples/litmus/
  Spec (*record)();
};

/// Every annotated structure in the repo, in gate order. Adding a
/// structure = write its record_*_protocol() next to the real code and
/// list it here; the CI drift gate picks it up from the CLI's --list.
inline std::vector<RegisteredProtocol> protocol_registry() {
  return {
      {"the-deque", "the_deque_holes.lit", &ws::record_the_deque_protocol},
      {"chase-lev", "chase_lev.lit", &ws::record_chase_lev_protocol},
      {"biased-rwlock", "biased_rwlock.lit",
       &lbmf::record_biased_rwlock_protocol},
      // The zoo's N-thread bakery: the contender count is a parameter of
      // the spec function (LBMF_ROLES); the registry pins the committed
      // two-contender shape.
      {"bakery", "bakery_holes.lit",
       +[] { return zoo::record_bakery_protocol(2); }},
  };
}

inline Spec record_protocol(const RegisteredProtocol& rp) {
  return rp.record();
}

}  // namespace lbmf::extract

#endif  // LBMF_EXTRACT_ENABLED
