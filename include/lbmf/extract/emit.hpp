#pragma once

/// The lbmf::extract emitter: canonicalize a recorded Spec (trace.hpp)
/// and write it as a holey `.lit` file the existing assembler accepts
/// unchanged, plus the semantic drift-compare the CI gate runs against
/// the committed hand-written litmus files.

#include <string>
#include <string_view>
#include <vector>

#include "lbmf/extract/trace.hpp"

namespace lbmf::extract {

struct EmitOptions {
  /// Append `#@ file:line` provenance comments to emitted instructions
  /// (and a role marker on each `cpu N:` line). The assembler parses them
  /// back onto `?fence` holes; everything else treats them as comments.
  bool provenance = true;
  /// Extra context for the generated-file banner, e.g. the committed
  /// file the output is drift-gated against.
  std::string banner_note;
};

/// One recording problem found while validating a Spec, with the
/// annotation's own source location so the report reads like a compiler
/// diagnostic over the runtime header.
struct EmitError {
  std::string message;
  SourceLoc src;

  std::string to_string() const;
};

struct EmitResult {
  std::string text;  // the generated `.lit`, empty on error
  std::vector<EmitError> errors;

  bool ok() const noexcept { return errors.empty(); }
  std::string error_string() const;
};

/// Canonicalize and render `spec` as a `.lit` source. Canonicalization:
/// registers are renumbered per role in order of first use, provenance
/// paths are trimmed to their repo-relative suffix, role freqs fold into
/// `freq` directives and symmetric role groups into `symmetric cpu`
/// directives over the emitted section indices. Validation failures
/// (undefined branch targets, duplicate labels, a role not ending in
/// halt, unknown symmetric role names, non-integral freqs) are reported
/// with the offending annotation's file:line.
EmitResult emit_lit(const Spec& spec, const EmitOptions& opts = {});

/// Trim a __FILE__ path to its stable repo-relative suffix: the part
/// after the last "include/" when present (e.g. "lbmf/ws/deque.hpp"),
/// else after the last "/root/"-style prefix fallback — the basename.
std::string canonical_source_path(std::string_view file);

/// Semantic drift report between a generated litmus source and the
/// committed hand-written one: both are assembled and compared at the
/// program level (instruction bytes, symbols, initial memory, freqs,
/// `?fence` holes, `final` properties, symmetric groups), so comments and
/// label spelling never count as drift — only the protocol does.
struct DriftReport {
  std::vector<std::string> diffs;

  bool clean() const noexcept { return diffs.empty(); }
  std::string to_string() const;
};

DriftReport compare_litmus(std::string_view generated,
                           std::string_view committed);

}  // namespace lbmf::extract
