#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "lbmf/sim/machine.hpp"
#include "lbmf/sim/program.hpp"

namespace lbmf::sim {

/// Which fence a litmus thread places between its intent store and its read
/// of the peer's flag.
enum class FenceKind : std::uint8_t {
  kNone,     // nothing (incorrect under TSO; the negative control)
  kMfence,   // the traditional program-based fence
  kLmfence,  // the paper's location-based fence (Fig. 3(b) expansion)
};

const char* to_string(FenceKind k) noexcept;

/// Inverse of to_string(FenceKind); also accepts the bare "lmfence"
/// spelling used by the litmus grammar. Returns nullopt for anything else.
std::optional<FenceKind> fence_kind_from_string(std::string_view s) noexcept;

/// Append "[a] = v" with the chosen fence discipline: a plain store
/// (kNone), store + mfence (kMfence), or the Fig. 3(b) l-mfence expansion
/// (kLmfence). This is the shape every candidate fence site of lbmf::infer
/// instantiates to.
ProgramBuilder& fenced_store(ProgramBuilder& b, Addr a, Word v, FenceKind f);

/// Well-known addresses used by the canned litmus programs.
namespace addr {
inline constexpr Addr kFlag0 = 0;   // L1 in the paper's Fig. 3(a)
inline constexpr Addr kFlag1 = 1;   // L2
inline constexpr Addr kData = 2;
inline constexpr Addr kTurn = 3;    // Peterson's tie-breaker
inline constexpr Addr kScratchBase = 16;
}  // namespace addr

/// Registers holding litmus observations at halt.
namespace reg {
inline constexpr std::uint8_t kObs0 = 0;  // first observed value
inline constexpr std::uint8_t kObs1 = 1;  // second observed value
}  // namespace reg

/// One side of the (simplified, single-attempt) Dekker entry of Fig. 1 /
/// Fig. 3(a): announce intent with `fence` semantics, read the peer flag
/// into reg::kObs0, enter the critical section only if the peer flag was 0,
/// then clear the flag and halt. `cs_work` cycles are spent inside the
/// critical section.
Program dekker_side(Addr my_flag, Addr peer_flag, FenceKind fence,
                    Word cs_work = 0);

/// A 2-CPU machine running the Dekker entry with the given fences, e.g.
/// {kLmfence, kMfence} is exactly the paper's asymmetric protocol.
Machine make_dekker_machine(FenceKind primary, FenceKind secondary,
                            SimConfig cfg = {});

/// Classic store-buffering (SB) litmus:
///   CPU0: [x]=1; <fence>; r0=[y]      CPU1: [y]=1; <fence>; r0=[x]
/// The outcome r0==0 on both CPUs is allowed on TSO without fences and
/// forbidden with them (any combination of mfence / l-mfence).
Machine make_store_buffer_litmus(FenceKind f0, FenceKind f1,
                                 SimConfig cfg = {});

/// Message-passing litmus:
///   CPU0: [data]=42; [flag]=1         CPU1: r0=[flag]; r1=[data]
/// TSO forbids r0==1 && r1==0 with no fences at all (stores are not
/// reordered with stores; loads not reordered with loads) — this validates
/// that the simulator implements TSO rather than something weaker.
Machine make_message_passing_litmus(SimConfig cfg = {});

/// Load-buffering (LB) litmus:
///   CPU0: r0=[x]; [y]=1            CPU1: r0=[y]; [x]=1
/// The outcome r0==1 on both sides requires loads to be reordered after
/// later stores — forbidden on TSO (and by this simulator) with no fences
/// at all.
Machine make_load_buffering_litmus(SimConfig cfg = {});

/// IRIW (independent reads of independent writes):
///   CPU0: [x]=1   CPU1: [y]=1
///   CPU2: r0=[x]; r1=[y]           CPU3: r0=[y]; r1=[x]
/// The outcome where the two readers observe the writes in opposite orders
/// (r0==1, r1==0 on both) is forbidden on TSO: store visibility is a
/// single total order (the coherence bus serializes completions).
Machine make_iriw_litmus(SimConfig cfg = {});

/// Peterson's mutual-exclusion entry (single attempt): flag[i]=1; turn=j;
/// <fence>; enter iff !(flag[j] && turn==j). Peterson needs the same
/// StoreLoad ordering as Dekker, but the announce is TWO stores. With
/// kLmfence the l-mfence guards only the *last* store (turn) — sufficient
/// on TSO because the store buffer drains in FIFO order, so flushing turn
/// also completes flag[i]. This is the paper's Sec. 7 future-work question
/// ("what other algorithms can benefit") answered exhaustively.
Machine make_peterson_machine(FenceKind primary, FenceKind secondary,
                              SimConfig cfg = {});

/// Single-CPU program running `iters` iterations of announce-check-enter
/// (the solo Dekker loop from the paper's Sec. 1 overhead claim).
Machine make_solo_dekker_machine(FenceKind fence, int iters,
                                 Word cs_work = 4, SimConfig cfg = {});

/// Round-trip probe (Sec. 5 cost comparison): CPU0 arms an l-mfence link on
/// kFlag0 and then spins on private work; CPU1 performs a single load of
/// kFlag0. Run with run_round_robin and read CPU1's cycle counter: with
/// LE/ST this is the ~150-cycle remote round trip; with `use_interrupt`
/// the secondary instead pays a simulated signal round trip.
Machine make_roundtrip_machine(bool use_interrupt, SimConfig cfg = {});

/// Format the litmus observation registers of every CPU, e.g. "r0=0,r0=1".
std::string observe_obs0(const Machine& m);

/// Safety property over *terminal* states, for Explorer::Options::check:
/// a state where no CPU can Execute or Drain must (a) have every CPU
/// halted — otherwise some CPU is wedged on a blocked `lock`, reported as
/// a deadlock — and (b) match at least one of the `allowed` conjunctions
/// of (address, value) pairs, compared against Machine::coherent_value
/// (a dirty cache line beats stale memory at halt). An empty `allowed`
/// checks only for deadlock. Non-terminal states always pass, so the
/// property is insensitive to partial-order reduction (terminal states
/// are preserved exactly). This is how `final` directives from the litmus
/// grammar (AssembleResult::final_allowed) become explorer properties.
std::function<std::optional<std::string>(const Machine&)> final_state_check(
    std::vector<std::vector<std::pair<Addr, Word>>> allowed);

}  // namespace lbmf::sim
