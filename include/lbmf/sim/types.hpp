#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace lbmf::sim {

/// Simulated word-addressable memory. One address == one cache line == one
/// word: the protocols we model (Dekker duality, l-mfence) are defined on
/// distinct locations, and word-granularity lines keep the MESI state
/// machine exact without modelling sub-line masks. False sharing can still
/// be induced by mapping two logical variables to one address.
using Addr = std::uint32_t;
using Word = std::int64_t;

inline constexpr Addr kInvalidAddr = ~Addr{0};

/// Coherence stable states. The superset covers all three protocol
/// variants the paper mentions (Sec. 2: "we assume ... MESI ... although
/// the mechanism can be adapted to other variants such as MSI and MOESI").
/// Which states a machine actually uses is selected by SimConfig::protocol:
///   MSI   — Modified / Shared / Invalid
///   MESI  — + Exclusive (clean, sole copy)
///   MOESI — + Owned (dirty but shared; owner supplies data, memory stale)
enum class Mesi : std::uint8_t {
  Invalid,
  Shared,
  Exclusive,
  Modified,
  Owned,
};

const char* to_string(Mesi s) noexcept;

/// The coherence protocol the simulated machine runs.
enum class Protocol : std::uint8_t { kMsi, kMesi, kMoesi };

const char* to_string(Protocol p) noexcept;

/// All tunable knobs of the simulated machine, including the cycle-cost
/// table. Defaults are calibrated so the simulator reproduces the paper's
/// headline constants: an LE/ST remote round trip ≈ 150 cycles ("akin to an
/// L1 miss / L2 hit", Sec. 5) and a signal round trip ≈ 10,000 cycles.
struct SimConfig {
  std::size_t num_cpus = 2;
  /// FIFO store-buffer entries per CPU. Small values force natural drains
  /// and exercise the link-clearing-on-completion path.
  std::size_t sb_capacity = 8;
  /// Cache lines per CPU (fully associative, LRU). Small values force
  /// evictions of guarded lines — the notify-on-evict path of Sec. 3.
  std::size_t cache_capacity = 64;
  /// Words per cache line. 1 (default) keeps litmus tests exact; larger
  /// values model *false sharing*: a remote access to a neighbouring word
  /// in the guarded line fires the l-mfence guard even though the guarded
  /// location itself was never touched.
  std::size_t line_words = 1;
  /// If false, the LE instruction behaves as a plain load and no link is
  /// ever armed — used as an ablation of the hardware mechanism.
  bool le_st_enabled = true;
  /// Coherence protocol variant (Sec. 2: the mechanism adapts to all
  /// three). Under MSI the LE instruction acquires Modified directly
  /// (there is no Exclusive state); under MOESI a downgraded dirty line
  /// becomes Owned and memory stays stale until eviction.
  Protocol protocol = Protocol::kMesi;

  // --- cycle-cost table ------------------------------------------------
  std::uint64_t cost_reg_op = 1;         // register moves, branches
  std::uint64_t cost_load_hit = 1;       // load served by SB or local cache
  std::uint64_t cost_store_commit = 1;   // store entering the store buffer
  std::uint64_t cost_bus_transfer = 70;  // one coherence hop (req or reply)
  std::uint64_t cost_drain_entry = 10;   // completing one SB entry locally
  std::uint64_t cost_mfence_base = 100;  // fence overhead beyond the drains
  std::uint64_t cost_interrupt = 9800;   // signal delivery + handler round trip
};

/// What a scheduler may ask a CPU to do in one atomic simulator step.
enum class Action : std::uint8_t {
  Execute,    // run the next instruction
  Drain,      // complete the oldest store-buffer entry
  Interrupt,  // deliver an interrupt (flushes the store buffer)
};

const char* to_string(Action a) noexcept;

/// One scheduling decision, recorded so violating interleavings found by the
/// explorer can be replayed and printed.
struct Choice {
  std::uint8_t cpu;
  Action action;

  bool operator==(const Choice&) const = default;
};

std::string to_string(const Choice& c);

}  // namespace lbmf::sim
