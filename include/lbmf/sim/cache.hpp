#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <vector>

#include "lbmf/sim/types.hpp"

namespace lbmf::sim {

/// Small-buffer word storage for one cache line. The explorer snapshots
/// whole machines millions of times, and with the default line_words = 1 a
/// heap-allocated vector per line dominated the copy cost — so lines up to
/// kInlineWords wide (every bundled config, including the false-sharing
/// experiments) live entirely inline; wider lines spill to the heap.
class LineData {
 public:
  static constexpr std::size_t kInlineWords = 8;

  LineData() = default;
  explicit LineData(std::size_t n) : size_(n) {
    if (n > kInlineWords) heap_.resize(n);
  }
  LineData(std::initializer_list<Word> ws) : LineData(ws.size()) {
    std::copy(ws.begin(), ws.end(), data());
  }

  std::size_t size() const noexcept { return size_; }
  Word* data() noexcept {
    return size_ <= kInlineWords ? inline_.data() : heap_.data();
  }
  const Word* data() const noexcept {
    return size_ <= kInlineWords ? inline_.data() : heap_.data();
  }
  Word& operator[](std::size_t i) noexcept { return data()[i]; }
  Word operator[](std::size_t i) const noexcept { return data()[i]; }
  Word* begin() noexcept { return data(); }
  Word* end() noexcept { return data() + size_; }
  const Word* begin() const noexcept { return data(); }
  const Word* end() const noexcept { return data() + size_; }

  friend bool operator==(const LineData& a, const LineData& b) noexcept {
    return a.size_ == b.size_ &&
           std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  std::size_t size_ = 0;
  std::array<Word, kInlineWords> inline_{};
  std::vector<Word> heap_;  // only engaged when size_ > kInlineWords
};

/// One resident line in a private cache. Lines hold `SimConfig::line_words`
/// consecutive words starting at `base` (base is always line-aligned); the
/// default of one word per line keeps litmus tests exact, while wider lines
/// model false sharing — including remote accesses to a *neighbouring*
/// word of an l-mfence-guarded location firing the guard.
struct CacheLine {
  Addr base = kInvalidAddr;
  Mesi state = Mesi::Invalid;
  LineData data;
  std::uint64_t lru = 0;  // last-touch stamp; smallest is evicted first

  Word& at(std::size_t offset) noexcept { return data[offset]; }
  Word at(std::size_t offset) const noexcept { return data[offset]; }
};

/// A fully associative, LRU private cache keyed by line base address.
/// Value-semantic (copyable) so the interleaving explorer can snapshot
/// whole machines. Linear scans are fine: litmus programs touch a handful
/// of lines.
class Cache {
 public:
  explicit Cache(std::size_t capacity) : capacity_(capacity) {}

  /// Lookup without touching LRU state (for invariant checks / peeking).
  const CacheLine* peek(Addr base) const noexcept;

  /// Lookup and refresh the line's LRU stamp.
  CacheLine* touch(Addr base) noexcept;

  /// Insert (or overwrite) a line. If the cache is full, evicts the LRU
  /// line first and returns it so the owner can run eviction side effects
  /// (writeback; guard-link breaking per Sec. 3 of the paper).
  std::optional<CacheLine> insert(Addr base, Mesi state, LineData data);

  /// Change the state of a resident line; no-op if absent.
  void set_state(Addr base, Mesi state) noexcept;

  /// Remove a line (invalidate); returns the removed line if present.
  std::optional<CacheLine> erase(Addr base) noexcept;

  std::size_t size() const noexcept { return lines_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  /// Resident lines, always sorted by base address (insert maintains the
  /// order) — canonical state encodings depend on this invariant.
  const std::vector<CacheLine>& lines() const noexcept { return lines_; }

  /// Replace the resident lines wholesale (the Machine state-restore path).
  /// `lines` must be sorted by base with `lru` fields holding eviction
  /// *ranks* (any strictly-ordered stamps work); the internal LRU clock
  /// resumes above the largest of them so subsequent touches stay newest.
  void restore_lines(std::vector<CacheLine> lines);

 private:
  std::size_t capacity_;
  std::uint64_t clock_ = 0;
  std::vector<CacheLine> lines_;
};

/// One committed-but-incomplete store (Sec. 2: committed = in the buffer,
/// completed = written to the cache). Store granularity is one word.
struct StoreEntry {
  Addr addr = kInvalidAddr;
  Word value = 0;
  /// True if this is the store associated with an armed l-mfence link; its
  /// completion clears the link (Sec. 3).
  bool guarded = false;
};

/// FIFO store buffer with store-to-load forwarding.
class StoreBuffer {
 public:
  explicit StoreBuffer(std::size_t capacity) : capacity_(capacity) {}

  bool full() const noexcept { return entries_.size() >= capacity_; }
  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }

  void push(StoreEntry e) { entries_.push_back(e); }

  /// Oldest entry (the next to complete). Precondition: !empty().
  StoreEntry pop_oldest();

  /// Youngest entry matching `a`, if any — store-buffer forwarding gives a
  /// load the most recent committed value (Sec. 2).
  std::optional<Word> forwarded_value(Addr a) const noexcept;

  const std::vector<StoreEntry>& entries() const noexcept { return entries_; }

  /// Drop all entries (the Machine state-restore path rebuilds the buffer
  /// entry by entry with push()).
  void clear() noexcept { entries_.clear(); }

 private:
  std::size_t capacity_;
  std::vector<StoreEntry> entries_;  // front = oldest
};

}  // namespace lbmf::sim
