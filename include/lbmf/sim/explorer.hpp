#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "lbmf/sim/machine.hpp"

namespace lbmf::sim {

/// Result of an exhaustive interleaving exploration.
struct ExploreResult {
  std::uint64_t states_explored = 0;
  std::uint64_t transitions = 0;
  std::uint64_t terminal_states = 0;
  bool hit_limit = false;

  /// First invariant violation found, with the schedule reaching it.
  std::optional<std::string> violation;
  std::vector<Choice> violation_trace;

  /// Distinct terminal observations (as produced by Options::observe).
  std::set<std::string> outcomes;

  bool ok() const noexcept { return !violation && !hit_limit; }
};

/// Depth-first enumeration of *all* schedules of a machine, with state
/// memoization: two interleavings that reach the same architectural state
/// are explored once. This turns the paper's Theorems 4 and 7 into
/// machine-checked statements (over bounded litmus programs): mutual
/// exclusion holds under l-mfence in every reachable interleaving, and the
/// checker exhibits a concrete violating schedule once fences are removed.
class Explorer {
 public:
  struct Options {
    /// Safety property checked after every transition; return a description
    /// to flag a violation.
    std::function<std::optional<std::string>(const Machine&)> check;
    /// Projection of terminal states collected into ExploreResult::outcomes
    /// (e.g. final register values for litmus tests). Optional.
    std::function<std::string(const Machine&)> observe;
    /// Also check MESI/link invariants after every transition.
    bool check_coherence = true;
    /// Treat two concurrent critical sections as a violation.
    bool check_mutual_exclusion = true;
    /// Abort enumeration after visiting this many distinct states.
    std::uint64_t max_states = 2'000'000;
    /// Stop at the first violation (true) or keep enumerating (false).
    bool stop_at_violation = true;
  };

  Explorer(Machine initial, Options opts);

  ExploreResult run();

 private:
  void dfs(const Machine& m);

  Machine initial_;
  Options opts_;
  ExploreResult result_;
  std::set<std::string> visited_;
  std::vector<Choice> trace_;
  bool done_ = false;
};

/// Convenience: explore `machine` and require that no violation exists.
/// Returns the result for further outcome assertions.
ExploreResult explore_all(Machine machine, std::uint64_t max_states = 2'000'000);

/// Replay a schedule (e.g. an explorer violation trace) on a fresh copy of
/// `initial` with event tracing attached, and return the annotated
/// event-by-event account plus the final safety verdict — the "waveform"
/// view of a counterexample.
std::string annotate_schedule(Machine initial,
                              const std::vector<Choice>& schedule);

}  // namespace lbmf::sim
