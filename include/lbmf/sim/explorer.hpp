#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "lbmf/sim/machine.hpp"

namespace lbmf::sim {

/// Result of an exhaustive interleaving exploration.
struct ExploreResult {
  std::uint64_t states_explored = 0;
  std::uint64_t transitions = 0;
  std::uint64_t terminal_states = 0;
  /// Transitions that landed on an already-visited state (memoization hits).
  std::uint64_t dedup_hits = 0;
  /// Approximate *resident* footprint of the visited-state structure at the
  /// end of the run (fingerprint slots, or canonical keys + node overhead
  /// in exact_dedup mode). Spilled segments are excluded.
  std::uint64_t visited_bytes = 0;
  /// Bytes of visited-set state frozen into file-backed spill segments
  /// (see Options::visited_budget_bytes), and how many segments.
  std::uint64_t spill_bytes = 0;
  std::uint32_t spill_segments = 0;
  /// Machine::symmetry_orbit() of the explored machine: how many raw states
  /// each canonical representative stands for (1 = no reduction).
  std::uint64_t symmetry_orbit = 1;
  bool hit_limit = false;

  /// First invariant violation found, with the schedule reaching it.
  std::optional<std::string> violation;
  std::vector<Choice> violation_trace;

  /// Distinct terminal observations (as produced by Options::observe).
  std::set<std::string> outcomes;

  bool ok() const noexcept { return !violation && !hit_limit; }
};

/// Depth-first enumeration of *all* schedules of a machine, with state
/// memoization: two interleavings that reach the same architectural state
/// are explored once. This turns the paper's Theorems 4 and 7 into
/// machine-checked statements (over bounded litmus programs): mutual
/// exclusion holds under l-mfence in every reachable interleaving, and the
/// checker exhibits a concrete violating schedule once fences are removed.
///
/// Engine (see docs/ARCHITECTURE.md "Explorer internals"):
///  * visited states are 128-bit fingerprints of Machine::canonical_state()
///    in an open-addressing flat set (16 bytes/state); `exact_dedup` keeps
///    the full canonical keys instead so collision behaviour is auditable;
///  * the DFS is iterative (explicit frame stack, no recursion limit) and
///    moves — rather than copies — the parent snapshot into its last child;
///  * partial-order reduction prunes commuting interleavings of *local*
///    actions (Machine::action_is_local) via singleton ample sets with an
///    in-stack cycle proviso; terminal states, outcomes, and the built-in
///    coherence / mutual-exclusion verdicts are preserved exactly;
///  * `threads > 1` fans a breadth-first frontier out over the repo's own
///    lbmf::ws work-stealing scheduler with a sharded concurrent visited
///    set — the asymmetric-fence runtime accelerating its own verifier.
class Explorer {
 public:
  struct Options {
    /// Safety property, evaluated once per newly discovered state (states
    /// are predicates, so re-checking on every incoming transition would be
    /// redundant); return a description to flag a violation. Violating
    /// states count toward states_explored but are never expanded.
    std::function<std::optional<std::string>(const Machine&)> check;
    /// Projection of terminal states collected into ExploreResult::outcomes
    /// (e.g. final register values for litmus tests). Optional.
    std::function<std::string(const Machine&)> observe;
    /// Also check MESI/link invariants after every transition.
    bool check_coherence = true;
    /// Treat two concurrent critical sections as a violation.
    bool check_mutual_exclusion = true;
    /// Abort enumeration after visiting this many distinct states.
    std::uint64_t max_states = 2'000'000;
    /// Stop at the first violation (true) or keep enumerating (false).
    bool stop_at_violation = true;
    /// Partial-order reduction. Sound for the built-in properties, terminal
    /// states and outcomes; a custom `check` over *intermediate* states
    /// only sees the reduced graph — set por = false to check every state
    /// of the full graph.
    bool por = true;
    /// Store full canonical state keys instead of 128-bit fingerprints.
    /// Slower and ~15x more memory, but dedup is exact by construction —
    /// the audit mode tests use it to show fingerprinting loses nothing.
    bool exact_dedup = false;
    /// In-RAM budget for the visited set; 0 = unbounded. When a shard of
    /// the set outgrows its slice, its live fingerprints freeze into a
    /// file-backed mmap'd segment and a fresh live set takes over, so deep
    /// explorations degrade to probing disk-backed pages instead of
    /// OOMing. Ignored in exact_dedup mode.
    std::uint64_t visited_budget_bytes = 0;
    /// Number of lbmf::ws workers to fan the exploration out over; 0 or 1
    /// explores sequentially. Parallel runs visit the same states and
    /// produce the same outcomes/verdicts, but states_explored can differ
    /// slightly under POR (the cycle proviso is evaluated conservatively
    /// across workers) and the violating schedule found first is
    /// nondeterministic.
    std::size_t threads = 1;
  };

  Explorer(Machine initial, Options opts);

  ExploreResult run();

 private:
  Machine initial_;
  Options opts_;
};

/// Convenience: explore `machine` with default options and the given state
/// budget. Returns the result for further outcome assertions.
ExploreResult explore_all(Machine machine, std::uint64_t max_states = 2'000'000);

/// Convenience overload that honours every option (observe/check/por/...).
ExploreResult explore_all(Machine machine, Explorer::Options opts);

/// Replay a schedule (e.g. an explorer violation trace) on a fresh copy of
/// `initial` with event tracing attached, and return the annotated
/// event-by-event account plus the final safety verdict — the "waveform"
/// view of a counterexample.
std::string annotate_schedule(Machine initial,
                              const std::vector<Choice>& schedule);

/// One start state for a seeded (incremental) run: a machine inside the
/// frontier of a pre-explored prefix region, the schedule that reaches it
/// from the true root, and the subset of its enabled choices still to take
/// (its remaining edges were already explored inside the prefix region, so
/// the seed frame counts as fully expanded for the POR cycle proviso).
struct SeedState {
  Machine m;
  std::vector<Choice> prefix;
  std::vector<Choice> agenda;
};

/// Resume an exploration from pre-explored seeds instead of a root:
/// `visited` preloads the dedup set with the prefix region's fingerprints
/// (so suffix paths re-entering the region dedup exactly as a cold run
/// would) and `base` carries the region's counters/outcomes, which the
/// returned result includes. Seeds must already be deduped, counted (in
/// `base.states_explored`) and safety-checked. If `base` already holds a
/// violation or hit its limit, it is returned unchanged. This is the
/// engine behind lbmf::infer's incremental re-exploration: the hole-free
/// prefix region is explored once and reused across candidate placements.
ExploreResult explore_seeded(std::vector<SeedState> seeds,
                             const std::vector<Fingerprint>& visited,
                             const ExploreResult& base,
                             const Explorer::Options& opts);

}  // namespace lbmf::sim
