#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "lbmf/sim/cache.hpp"
#include "lbmf/sim/program.hpp"
#include "lbmf/sim/types.hpp"
#include "lbmf/util/hash.hpp"

namespace lbmf::sim {

class TraceRecorder;

/// Compact identity of an architectural state: a 128-bit hash of the
/// canonical encoding. Used by the explorer's default dedup set (16 bytes
/// per state instead of the full ~256-byte serialization).
using Fingerprint = lbmf::Hash128;

/// Shared memory as a sorted flat array of (address, word) pairs. Litmus
/// footprints are a handful of locations, and the explorer snapshots whole
/// machines millions of times — one contiguous allocation copies with a
/// memcpy where a std::map paid an allocation per entry. Unset addresses
/// read as zero. Iteration order is ascending (canonical encodings depend
/// on it).
class FlatMemory {
 public:
  Word get(Addr a) const noexcept {
    const auto it = find(a);
    return (it != v_.end() && it->first == a) ? it->second : 0;
  }
  void set(Addr a, Word w) {
    const auto it = find(a);
    if (it != v_.end() && it->first == a) {
      it->second = w;
    } else {
      v_.insert(it, {a, w});
    }
  }
  std::size_t size() const noexcept { return v_.size(); }
  auto begin() const noexcept { return v_.begin(); }
  auto end() const noexcept { return v_.end(); }
  void clear() noexcept { v_.clear(); }  // Machine::restore_arch rebuilds

 private:
  std::vector<std::pair<Addr, Word>>::iterator find(Addr a) noexcept {
    return std::lower_bound(
        v_.begin(), v_.end(), a,
        [](const std::pair<Addr, Word>& kv, Addr x) { return kv.first < x; });
  }
  std::vector<std::pair<Addr, Word>>::const_iterator find(Addr a)
      const noexcept {
    return std::lower_bound(
        v_.begin(), v_.end(), a,
        [](const std::pair<Addr, Word>& kv, Addr x) { return kv.first < x; });
  }

  std::vector<std::pair<Addr, Word>> v_;
};

/// Per-CPU event counters (not part of the canonical state; pure telemetry).
struct CpuCounters {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t mfences = 0;
  std::uint64_t bus_transactions = 0;
  std::uint64_t sb_drains = 0;          // entries completed
  std::uint64_t links_armed = 0;        // SetLink executions arming a link
  std::uint64_t link_breaks_remote = 0; // guard fired on remote downgrade/inv
  std::uint64_t link_breaks_evict = 0;  // guard fired on local eviction
  std::uint64_t link_breaks_second = 0; // second l-mfence to a new location
  std::uint64_t link_clears_complete = 0;  // guarded store completed
};

/// The architectural (explorable) state of one simulated CPU, plus its
/// program. Value-semantic: the explorer copies whole machines.
struct CpuState {
  explicit CpuState(const SimConfig& cfg)
      : sb(cfg.sb_capacity), cache(cfg.cache_capacity) {}

  std::shared_ptr<const Program> program;  // immutable, shared across copies
  std::int32_t pc = 0;
  std::array<Word, 8> regs{};
  StoreBuffer sb;
  Cache cache;

  // The two registers the LE/ST mechanism adds (Sec. 3).
  bool le_bit = false;
  Addr le_addr = kInvalidAddr;

  bool in_cs = false;
  bool halted = false;
  bool flushing = false;  // re-entrancy latch for guard-triggered flushes

  /// Bit i set iff the loaded program contains an instruction that writes
  /// regs[i] (derived constant, set by load_program). Registers outside the
  /// mask are zero in every reachable state, so canonical encodings skip
  /// them.
  std::uint8_t regs_written_mask = 0;

  CpuCounters counters;
};

/// A TSO multiprocessor with per-CPU FIFO store buffers, MESI private
/// caches over a shared memory, and the LE/ST location-based-memory-fence
/// mechanism. Coherence transactions are atomic in simulator time; the
/// schedulable nondeterminism is *which CPU steps next* and *when a store
/// buffer drains an entry* — exactly the degrees of freedom that produce
/// TSO reorderings and the corner cases in Sec. 3/4 of the paper.
class Machine {
 public:
  explicit Machine(SimConfig cfg);

  /// Attach a program to a CPU (before the first step).
  void load_program(std::size_t cpu, Program p);

  void set_memory(Addr a, Word v) { mem_.set(a, v); }
  Word memory(Addr a) const;

  /// The globally visible value of `a`: a dirty (M/O) cache copy anywhere
  /// beats possibly-stale memory. Store-buffer entries are invisible (TSO:
  /// not yet globally performed). This is the value a locked RMW observes
  /// and the value `final` directives are checked against.
  Word coherent_value(Addr a) const;

  /// Whether `step(cpu, a)` is currently legal.
  bool action_enabled(std::size_t cpu, Action a) const;

  /// Perform one atomic step. Precondition: action_enabled(cpu, a).
  void step(std::size_t cpu, Action a);

  /// Every CPU halted and every store buffer drained.
  bool finished() const;

  /// Drive with a fixed round-robin schedule (drains interleaved); returns
  /// steps taken. Aborts via LBMF_CHECK if max_steps is exceeded (i.e. the
  /// program does not terminate).
  std::uint64_t run_round_robin(std::uint64_t max_steps = 10'000'000);

  /// Drive with a seeded random schedule; returns steps taken.
  std::uint64_t run_random(std::uint64_t seed,
                           std::uint64_t max_steps = 10'000'000);

  /// MESI single-writer / value-coherence invariants. Returns a description
  /// of the first violated invariant, or nullopt if all hold.
  std::optional<std::string> check_coherence() const;

  /// Number of CPUs currently inside a critical section.
  std::size_t cpus_in_cs() const;

  /// Canonical encoding of the architectural state (excludes counters), for
  /// explorer memoization. Two machines with equal canonical state have
  /// identical future behaviour.
  std::string canonical_state() const;

  /// Append the canonical encoding to `out` (without clearing it). The
  /// allocation-free workhorse behind canonical_state()/fingerprint(): the
  /// explorer reuses one scratch buffer across millions of states instead
  /// of materializing a fresh std::string per state.
  void append_canonical(std::string& out) const;

  /// 128-bit hash of the canonical encoding, serialized into `scratch`
  /// (cleared first, capacity reused across calls).
  Fingerprint fingerprint(std::string& scratch) const;

  /// Whether `step(cpu, a)` is *local*: it reads and writes only the
  /// private, coherence-invisible state of `cpu` (pc, registers, its own
  /// store-buffer contents) and cannot interact with any other CPU in
  /// either direction — no bus transaction, no cache or LRU mutation, no
  /// LE-link arm/break, no critical-section flag change. Local actions on
  /// distinct CPUs commute and can neither enable nor disable each other,
  /// which is the independence relation the explorer's partial-order
  /// reduction is built on. Precondition: action_enabled(cpu, a).
  bool action_is_local(std::size_t cpu, Action a) const;

  std::size_t num_cpus() const noexcept { return cpus_.size(); }
  const CpuState& cpu(std::size_t i) const { return cpus_[i]; }
  const SimConfig& config() const noexcept { return cfg_; }

  /// State of address `a` in cpu `i`'s cache (Invalid if absent).
  Mesi line_state(std::size_t i, Addr a) const;

  /// Deliver an interrupt to a CPU (models signal delivery: kernel crossing
  /// plus a full store-buffer flush). Usable any time before halt.
  void deliver_interrupt(std::size_t cpu);

  /// Sum of cycles across CPUs (a serial-machine view of cost).
  std::uint64_t total_cycles() const;

  /// Attach (or detach with nullptr) an event recorder. Not part of the
  /// architectural state: copies of the machine share the pointer, and
  /// recording changes no behaviour.
  void set_trace(TraceRecorder* t) noexcept { trace_ = t; }

  // --- Thread-symmetry reduction ------------------------------------------
  //
  // Soundness. Let G = {i_1, ..., i_k} be a group of CPUs with
  // byte-identical programs. All CPUs start from the same private state
  // (pc 0, zero registers, empty store buffer, empty cache, link clear), so
  // any permutation pi of G induces an automorphism of the transition
  // system: relabel each grouped CPU's private state by pi and leave shared
  // memory fixed. action_enabled/step consult only the acting CPU's program
  // and private state plus *location-indexed* (never CPU-indexed) shared
  // state, so s --(cpu,a)--> t implies pi(s) --(pi(cpu),a)--> pi(t), and
  // conversely via pi^-1 — orbits map onto orbits edge for edge. Every
  // property the explorer checks is permutation-invariant: the coherence
  // invariants quantify over all caches, cpus_in_cs() is a count, and
  // `final` properties read only coherent memory. Hence exploring one
  // representative per orbit reaches a violation iff the full space does,
  // and the terminal outcome set is unchanged. canonical_state() picks the
  // representative by serializing each grouped CPU's state block and
  // emitting the blocks in sorted order within the group; Explorer's
  // exact_dedup audit mode keys on this same canonical string, so the
  // fingerprint-vs-exact parity check continues to cover the reduction.

  /// Declare groups of interchangeable CPUs, canonicalized over by
  /// canonical_state()/fingerprint(). Every group must name >= 2 distinct
  /// in-range CPUs whose loaded programs are byte-identical (checked).
  /// Call after load_program. Copies of the machine share the (immutable)
  /// group table, so snapshots stay cheap.
  void set_symmetric_groups(std::vector<std::vector<std::uint8_t>> groups);

  /// Auto-detect symmetry: group CPUs whose programs are byte-identical.
  /// Returns the number of CPUs that ended up in a group of size >= 2
  /// (0 means no reduction; any existing groups are replaced).
  std::size_t auto_symmetry();

  /// Active symmetry groups (empty when reduction is off).
  const std::vector<std::vector<std::uint8_t>>& symmetric_groups() const;

  void clear_symmetric_groups() noexcept { sym_groups_.reset(); }

  /// Product of |g|! over the active groups: the (maximum) number of raw
  /// states each canonical representative stands for.
  std::uint64_t symmetry_orbit() const noexcept;

  // --- Architectural state persistence ------------------------------------

  /// Append a byte-serialization of the full architectural state (pcs,
  /// registers, store buffers, cache lines with LRU ranks, LE links,
  /// cs/halt flags, shared memory) to `out`. Counters, programs and config
  /// are NOT serialized: restore_arch() requires a machine already carrying
  /// the same config and (equivalent) programs. Used by the incremental
  /// explorer to persist reached-state-graph seeds across runs.
  void save_arch(std::string& out) const;

  /// Restore state saved by save_arch(). Returns false (machine
  /// unspecified) on a malformed or truncated buffer.
  bool restore_arch(std::string_view in);

  /// Overwrite one CPU's program counter. Restore-path helper: a saved
  /// state resumed into a program whose instruction indices shifted (fence
  /// holes instantiated) needs its pcs remapped. The new pc must be in
  /// range for the loaded program.
  void set_pc(std::size_t cpu, std::int32_t pc);

 private:
  CpuState& mut_cpu(std::size_t i) { return cpus_[i]; }

  void exec_instr(CpuState& c);

  // --- memory-system internals. All return the latency (cycles) the
  // *initiating* CPU experiences; callees also charge remote CPUs for work
  // they perform (e.g. a guard-triggered flush).
  std::uint64_t bus_read(CpuState& c, Addr a, Word& out);        // GetS
  std::uint64_t bus_read_exclusive(CpuState& c, Addr a, Word& out);  // GetX
  std::uint64_t acquire_exclusive(CpuState& c, Addr a);
  std::uint64_t complete_oldest(CpuState& c);
  std::uint64_t flush_sb(CpuState& c);
  /// Guard check on CPU `owner` for a remote request to `a`. Returns the
  /// latency the requester must wait for the owner's flush (0 if no guard).
  std::uint64_t notify_guard_remote(CpuState& owner, Addr base);
  void handle_self_eviction(CpuState& c, const CacheLine& evicted);
  void clear_link(CpuState& c);

  // Line geometry (SimConfig::line_words) and whole-line memory access.
  Addr line_base(Addr a) const noexcept;
  std::size_t line_off(Addr a) const noexcept;
  LineData memory_line(Addr base) const;
  void writeback_line(const CacheLine& l);

  void trace(const CpuState& c, int kind_int, Addr a = kInvalidAddr,
             Word v = 0, std::string detail = {}) const;

  /// Serialize one CPU's canonical block into `s` (shared tail excluded).
  void append_cpu_block(const CpuState& c, std::string& s) const;

  SimConfig cfg_;
  std::vector<CpuState> cpus_;
  FlatMemory mem_;
  TraceRecorder* trace_ = nullptr;
  /// Interchangeable-CPU groups (see set_symmetric_groups). Shared across
  /// machine copies: the table is immutable and snapshot copies are on the
  /// explorer's hot path.
  std::shared_ptr<const std::vector<std::vector<std::uint8_t>>> sym_groups_;
};

}  // namespace lbmf::sim
