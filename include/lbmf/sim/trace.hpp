#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lbmf/sim/types.hpp"

namespace lbmf::sim {

/// Everything observable that happens inside the simulated machine, at the
/// granularity a hardware-bringup engineer would want in a waveform: one
/// event per instruction, buffer drain, coherence transaction and LE/ST
/// link transition.
enum class EventKind : std::uint8_t {
  kExec,           // instruction executed (detail = disassembly)
  kDrain,          // one store-buffer entry completed
  kInterrupt,      // interrupt delivered (full flush)
  kBusRead,        // GetS transaction
  kBusReadX,       // GetX / RFO transaction
  kWriteback,      // dirty data written to memory
  kLinkArm,        // SetLink armed the LE/ST link
  kGuardRemote,    // link broken by a remote downgrade/invalidate
  kGuardEvict,     // link broken by a local eviction
  kGuardSecond,    // link broken by a second l-mfence elsewhere
  kLinkComplete,   // link cleared by the guarded store completing
};

const char* to_string(EventKind k) noexcept;

struct TraceEvent {
  std::uint64_t seq = 0;
  std::uint8_t cpu = 0;
  EventKind kind{};
  Addr addr = kInvalidAddr;
  Word value = 0;
  std::string detail;
};

std::string to_string(const TraceEvent& e);

/// Append-only event sink attached to a Machine via set_trace(). Not part
/// of the architectural state: explorer snapshots share (or drop) the
/// recorder, and recorded cycles/ordering have no effect on behaviour.
class TraceRecorder {
 public:
  void record(std::uint8_t cpu, EventKind kind, Addr addr = kInvalidAddr,
              Word value = 0, std::string detail = {}) {
    events_.push_back(TraceEvent{next_seq_++, cpu, kind, addr, value,
                                 std::move(detail)});
  }

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  void clear() noexcept {
    events_.clear();
    next_seq_ = 0;
  }

  /// Number of recorded events of one kind.
  std::size_t count(EventKind k) const noexcept;

  /// Multi-line human-readable dump.
  std::string to_string() const;

 private:
  std::vector<TraceEvent> events_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace lbmf::sim
