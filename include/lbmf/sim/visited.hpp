#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "lbmf/sim/machine.hpp"

namespace lbmf::sim {

/// Open-addressing flat set of 128-bit fingerprints: 16 bytes per slot,
/// linear probing, grown at 70% load. {0,0} is the empty-slot marker (a
/// real fingerprint hashing to exactly zero is remapped to {1,0}).
class FingerprintSet {
 public:
  FingerprintSet() { slots_.assign(kInitialCapacity, Fingerprint{}); }

  bool insert(Fingerprint fp) {
    if (fp.lo == 0 && fp.hi == 0) fp.lo = 1;
    if ((size_ + 1) * 10 >= slots_.size() * 7) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(fp.hi) & mask;
    while (true) {
      Fingerprint& slot = slots_[i];
      if (slot.lo == 0 && slot.hi == 0) {
        slot = fp;
        ++size_;
        return true;
      }
      if (slot == fp) return false;
      i = (i + 1) & mask;
    }
  }

  std::size_t size() const noexcept { return size_; }
  std::uint64_t bytes() const noexcept {
    return slots_.size() * sizeof(Fingerprint);
  }
  /// The raw slot array (empty slots are {0,0}); SpillSegment freezes it.
  const std::vector<Fingerprint>& slots() const noexcept { return slots_; }

 private:
  static constexpr std::size_t kInitialCapacity = 1024;  // power of two

  void grow() {
    std::vector<Fingerprint> old = std::move(slots_);
    slots_.assign(old.size() * 2, Fingerprint{});
    size_ = 0;
    for (const Fingerprint& fp : old) {
      if (fp.lo != 0 || fp.hi != 0) insert(fp);
    }
  }

  std::size_t size_ = 0;
  std::vector<Fingerprint> slots_;
};

/// A frozen, read-only spill segment: the slot array of a FingerprintSet
/// written to an unlinked temporary file and mapped back PROT_READ, so the
/// kernel may drop (and re-fault) its pages under memory pressure instead
/// of the process OOMing. Probing uses the same open-addressing walk as the
/// live set — a miss costs the same bounded probe sequence, just against
/// file-backed pages. Falls back to keeping the slots in anonymous memory
/// when the filesystem refuses (stats then report it as resident).
class SpillSegment {
 public:
  explicit SpillSegment(const std::vector<Fingerprint>& slots);
  ~SpillSegment();
  SpillSegment(const SpillSegment&) = delete;
  SpillSegment& operator=(const SpillSegment&) = delete;

  /// `fp` must already be normalized ({0,0} remapped to {1,0}).
  bool contains(const Fingerprint& fp) const noexcept;

  std::uint64_t bytes() const noexcept {
    return nslots_ * sizeof(Fingerprint);
  }
  bool on_disk() const noexcept { return mapped_ != nullptr; }

 private:
  const Fingerprint* data() const noexcept {
    return mapped_ != nullptr ? static_cast<const Fingerprint*>(mapped_)
                              : ram_.data();
  }

  void* mapped_ = nullptr;  // mmap'd file copy (preferred)
  std::vector<Fingerprint> ram_;  // fallback when mmap is unavailable
  std::size_t nslots_ = 0;        // power of two
};

/// The dedup set behind the explorer: sharded so parallel workers contend
/// on 1/64th of the key space, with an exact mode that keys on the full
/// canonical bytes (collision-free by construction) for audit runs.
///
/// With a non-zero `budget_bytes`, each shard's live fingerprint set is
/// frozen into a SpillSegment once it outgrows its slice of the budget and
/// a fresh live set takes over — deep explorations degrade to probing a
/// few file-backed segments per insert instead of growing RAM without
/// bound. Exact mode never spills (audit runs are small by design).
class VisitedSet {
 public:
  VisitedSet(bool exact, bool concurrent, std::uint64_t budget_bytes = 0);

  /// Returns true if the state was not seen before. `canonical` must hold
  /// the serialized state `fp` was computed from (used in exact mode).
  bool insert(const Fingerprint& fp, const std::string& canonical);

  /// Pre-mark states as visited (the incremental explorer re-seeds the set
  /// with a persisted prefix region). Fingerprint mode only.
  void preload(const std::vector<Fingerprint>& fps);

  /// Approximate resident (RAM) footprint: live fingerprint slots, exact
  /// keys + node overhead, plus any segments that fell back to RAM.
  std::uint64_t bytes() const;

  /// Bytes frozen into file-backed spill segments.
  std::uint64_t spill_bytes() const;
  std::uint32_t spill_segments() const;

 private:
  static constexpr std::size_t kShards = 64;
  /// Never freeze below two grow steps of a fresh set: segments would
  /// otherwise hold a handful of fingerprints each and every insert would
  /// probe an unbounded segment chain.
  static constexpr std::uint64_t kMinShardBudget = 64 * 1024;

  struct Shard {
    std::mutex mu;
    FingerprintSet fps;
    std::unordered_set<std::string> exact;
    std::vector<std::unique_ptr<SpillSegment>> segs;
  };

  std::size_t shard_of(const Fingerprint& fp) const noexcept {
    return concurrent_ ? static_cast<std::size_t>(fp.hi >> 58) : 0;
  }

  bool insert_into(Shard& s, Fingerprint fp, const std::string& canonical);

  bool exact_;
  bool concurrent_;
  std::uint64_t shard_budget_ = 0;  // 0 = unbounded (never spill)
  std::vector<Shard> shards_;
};

}  // namespace lbmf::sim
