#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lbmf/sim/types.hpp"

namespace lbmf::sim {

/// The simulated ISA. Deliberately tiny: just enough to express the Dekker
/// protocols, the Fig. 3(b) l-mfence expansion, and litmus tests, while
/// keeping each instruction one atomic simulator step so the explorer can
/// interleave at the granularity where the paper's corner cases live (e.g.
/// a downgrade arriving between LE and ST).
enum class Op : std::uint8_t {
  kLoad,          // reg <- [addr]   (SB forwarding, then cache)
  kStore,         // [addr] <- imm   (commit to store buffer)
  kStoreReg,      // [addr] <- reg
  kLoadExclusive, // reg <- [addr], acquiring Exclusive state (the LE instr)
  kMfence,        // drain the store buffer, stall until complete
  kSetLink,       // LEBit <- 1, LEAddr <- addr (lines K1.1-K1.2 fused)
  kBranchLinkSet, // if LEBit != 0 goto target   (line K1.5)
  kMovImm,        // reg <- imm
  kAddImm,        // reg <- reg + imm
  kBranchEq,      // if reg == imm goto target
  kBranchNe,      // if reg != imm goto target
  kJump,          // goto target
  kCsEnter,       // enter critical section (checker bookkeeping)
  kCsExit,        // leave critical section
  kDelay,         // spend imm cycles of local work
  kHalt,
  kLock,          // spin-acquire [addr] (locked xchg: full fence + atomic RMW)
  kUnlock,        // release [addr] (locked store: full fence, bypasses the SB)
};

const char* to_string(Op op) noexcept;

struct Instr {
  Op op{};
  std::uint8_t reg = 0;
  Addr addr = kInvalidAddr;
  Word imm = 0;
  std::int32_t target = -1;  // branch destination (instruction index)

  /// Field-wise equality. Thread-symmetry reduction treats CPUs as
  /// interchangeable only when their instruction sequences compare equal.
  bool operator==(const Instr&) const = default;
};

std::string to_string(const Instr& i);

/// An immutable instruction sequence for one CPU.
struct Program {
  std::vector<Instr> code;
  std::string name;
};

/// Builder with label back-patching plus the macro-instructions used
/// throughout the tests and benches. All emit methods return *this for
/// chaining.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name = "") { prog_.name = std::move(name); }

  ProgramBuilder& load(std::uint8_t reg, Addr a);
  ProgramBuilder& store(Addr a, Word v);
  ProgramBuilder& store_reg(Addr a, std::uint8_t reg);
  ProgramBuilder& load_exclusive(std::uint8_t reg, Addr a);
  ProgramBuilder& mfence();
  ProgramBuilder& mov(std::uint8_t reg, Word v);
  ProgramBuilder& add(std::uint8_t reg, Word v);
  ProgramBuilder& cs_enter();
  ProgramBuilder& cs_exit();
  ProgramBuilder& delay(Word cycles);
  ProgramBuilder& halt();

  /// Locked-xchg mutex acquire/release on [a]. LOCK blocks (the Execute
  /// action is disabled) until the store buffer is empty and the coherent
  /// value of [a] is 0, then writes 1 atomically; UNLOCK drains likewise
  /// and writes 0. Both model x86 `lock xchg` — an implicit full fence.
  ProgramBuilder& lock(Addr a);
  ProgramBuilder& unlock(Addr a);

  /// Define a label at the current position.
  ProgramBuilder& label(const std::string& name);
  ProgramBuilder& branch_eq(std::uint8_t reg, Word v, const std::string& label);
  ProgramBuilder& branch_ne(std::uint8_t reg, Word v, const std::string& label);
  ProgramBuilder& jump(const std::string& label);

  /// The paper's Fig. 3(b) expansion of l-mfence(addr, v):
  ///   SetLink addr; LE addr; ST addr <- v; if (LEBit) goto done; MFENCE;
  /// done:
  /// Each micro-op is a separate simulator step, so the explorer can inject
  /// a remote access between any two of them. `scratch` is a register the
  /// LE may clobber.
  ProgramBuilder& lmfence(Addr a, Word v, std::uint8_t scratch = 7);

  /// Finalize: patches labels; aborts on undefined labels or a missing
  /// trailing HALT.
  Program build();

  /// Like build(), but reports problems instead of aborting: returns the
  /// error message, or nullopt on success (with *out filled in).
  std::optional<std::string> try_build(Program* out);

  /// Instructions emitted so far (the index the next emit will land on).
  std::size_t size() const noexcept { return prog_.code.size(); }

 private:
  ProgramBuilder& emit(Instr i);

  Program prog_;
  std::vector<std::pair<std::size_t, std::string>> fixups_;
  std::vector<std::pair<std::string, std::int32_t>> labels_;
};

}  // namespace lbmf::sim
