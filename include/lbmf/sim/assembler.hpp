#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lbmf/sim/machine.hpp"
#include "lbmf/sim/program.hpp"

namespace lbmf::sim {

/// Parse error with the 1-based source line it occurred on. When the
/// error is attributable to a concrete token, `column` (1-based) points
/// at it and `token` holds its text — so extractor-generated files are
/// debuggable down to the offending operand; structural errors (e.g. a
/// misplaced directive) keep column 0 and an empty token.
struct AssembleError {
  std::size_t line = 0;
  std::string message;
  std::size_t column = 0;
  std::string token;

  /// "line 7, col 12 near 'r9': register out of range" (or just
  /// "line 7: ..." when no token is attributed).
  std::string to_string() const;
};

/// A `?fence [loc], value` hole: a candidate fence site awaiting an
/// inference decision (see lbmf::infer). The hole assembles to the plain
/// store it guards, so a holey test run directly is its weakest (all-`none`)
/// instantiation.
struct LitHole {
  std::size_t cpu = 0;
  std::size_t instr_index = 0;  // index of the candidate store in programs[cpu]
  Addr addr = kInvalidAddr;
  Word value = 0;
  std::size_t line = 0;  // 1-based source line, for source rewriting
  /// Runtime-source provenance from a trailing `#@ file:line` comment on
  /// the hole's line (written by lbmf::extract's emitter); empty for
  /// hand-written litmus files. Flows to FenceSite::provenance and out
  /// through the inference reports' source_map.
  std::string provenance;
};

/// Output of assemble(): one Program per `cpu N:` section plus the mapping
/// from symbolic location names to simulated addresses.
struct AssembleResult {
  std::vector<Program> programs;
  std::map<std::string, Addr> symbols;
  /// `init [loc], value` directives, in source order.
  std::vector<std::pair<Addr, Word>> initial_memory;
  /// `?fence` candidate sites, in source order.
  std::vector<LitHole> holes;
  /// Relative execution frequency per CPU (`freq N` directive; default 1).
  /// Drives the fence-inference cost ranking: a "hot" CPU pays its
  /// per-announce fence cost that many times more often.
  std::vector<double> cpu_freqs;
  /// `final [loc], v, ...` directives: each entry is one conjunction of
  /// required terminal (address, value) pairs; the whole set is a
  /// disjunction. Empty means "no terminal-state property". Checked against
  /// coherent values once no CPU can step (see sim::final_state_check).
  std::vector<std::vector<std::pair<Addr, Word>>> final_allowed;
  /// `symmetric cpu N, M[, ...]` directives: groups of CPUs the author
  /// declares interchangeable. Validated at assemble time (byte-identical
  /// programs, equal freqs, aligned `?fence` holes) so the declaration
  /// fails loudly when the programs drift apart, then consumed by
  /// Machine::set_symmetric_groups for state canonicalization.
  std::vector<std::vector<std::size_t>> symmetric_groups;
  std::optional<AssembleError> error;

  bool ok() const noexcept { return !error.has_value(); }
};

/// Assemble a textual litmus test into simulator programs.
///
/// Syntax (one instruction per line; `#` or `//` start a comment):
///
///   init [flag], 0       # optional initial memory, before any cpu section
///   final [t0], 1, [t1], 0   # allowed terminal state (repeat = disjunction)
///   symmetric cpu 1, 2   # declare CPUs interchangeable (validated)
///   cpu 0:
///     freq  1000           # relative execution frequency (fence inference)
///     mov   r2, 5          # registers r0..r7
///   top:
///     store [flag], 1      # locations are symbolic or numeric: [3]
///     lock  [gate]         # blocking locked-xchg acquire (implicit mfence)
///     unlock [gate]        # locked release (implicit mfence)
///     lmfence [flag], 1    # the full Fig. 3(b) expansion
///     ?fence [flag], 1     # store with a fence HOLE (lbmf::infer decides)
///     mfence
///     load  r0, [peer]
///     le    r0, [peer]     # load-exclusive
///     add   r2, -1
///     beq   r0, 0, top
///     bne   r2, 0, top
///     jmp   top
///     delay 20
///     cs_enter
///     cs_exit
///     halt
///   cpu 1:
///     ...
///
/// Symbolic location names are assigned ascending addresses in order of
/// first appearance (shared across all CPUs — that is the point). Every
/// CPU section must end with `halt`. The full grammar, including the
/// `?fence` holes consumed by lbmf::infer, is documented in docs/LITMUS.md.
AssembleResult assemble(std::string_view source);

/// Convenience: assemble, abort (LBMF_CHECK) on error, and load the
/// programs into a machine configured for that many CPUs.
Machine assemble_machine(std::string_view source, SimConfig cfg = {});

}  // namespace lbmf::sim
