#pragma once

#include <cstddef>
#include <mutex>
#include <span>
#include <vector>

#include "lbmf/dekker/dekker.hpp"

namespace lbmf {

/// The *augmented* Dekker protocol the paper's motivating applications use
/// (Sec. 1): one primary thread enters often and cheaply; any number of
/// secondary threads first compete for the right to synchronize with the
/// primary (an internal gate lock) and the winner then runs the two-party
/// asymmetric Dekker protocol. Biased locks, JVM safepoints and
/// work-stealing deques all share this shape.
template <FencePolicy P>
class AsymmetricMutex {
 public:
  using Policy = P;

  /// Primary-thread registration; same contract as AsymmetricDekker.
  void bind_primary() { dekker_.bind_primary(); }
  void unbind_primary() { dekker_.unbind_primary(); }

  /// Fast path, primary only.
  void lock_primary() noexcept { dekker_.lock_primary(); }
  void unlock_primary() noexcept { dekker_.unlock_primary(); }
  bool try_lock_primary() noexcept { return dekker_.try_lock_primary(); }

  /// Slow path, any non-primary thread.
  void lock_secondary() {
    gate_.lock();
    dekker_.lock_secondary();
  }

  void unlock_secondary() {
    dekker_.unlock_secondary();
    gate_.unlock();
  }

  bool try_lock_secondary() {
    if (!gate_.try_lock()) return false;
    if (!dekker_.try_lock_secondary()) {
      gate_.unlock();
      return false;
    }
    return true;
  }

  // Wave phases (see lock_secondary_wave below): win the gate and post the
  // Dekker intent with no fence and no serialization, then — after the
  // caller has fenced once and serialized all primaries in one overlapped
  // wave — run the per-pair wait.
  void post_secondary_nofence() {
    gate_.lock();
    dekker_.post_secondary();
  }
  void finish_secondary_wave() {
    dekker_.note_wave_serialization();
    dekker_.await_secondary();
  }
  typename P::Handle primary_handle() const noexcept {
    return dekker_.primary_handle();
  }

  DekkerStats stats() const noexcept { return dekker_.stats(); }
  void reset_stats() noexcept { dekker_.reset_stats(); }

 private:
  AsymmetricDekker<P> dekker_;
  std::mutex gate_;
};

/// Acquire the secondary side of MANY AsymmetricMutexes with one hardware
/// fence and one overlapped serialization wave (P::serialize_many) instead
/// of a fence plus a full remote round trip per mutex — the cross-shard
/// control-plane primitive of the serving tier (rule pushes, stats export,
/// eviction sweeps). Cost model: sequential acquisition of N mutexes pays
/// N × (mfence + round trip); the wave pays 1 × mfence + max(round trips),
/// which is where bench_serve's E19 batched-vs-sequential gate comes from.
///
/// Contract: each mutex appears at most once, and concurrent wavers (or
/// wavers racing plain lock_secondary loops over several of the same
/// mutexes) must acquire in one consistent global order — pass the span
/// pre-sorted (e.g. ascending shard index), exactly as with ordinary
/// ordered lock acquisition. Returns the number of primaries serialized.
template <FencePolicy P>
std::size_t lock_secondary_wave(std::span<AsymmetricMutex<P>* const> ms) {
  for (AsymmetricMutex<P>* m : ms) m->post_secondary_nofence();
  P::secondary_fence();  // orders every intent store before every flag read
  std::vector<typename P::Handle> handles;
  handles.reserve(ms.size());
  for (AsymmetricMutex<P>* m : ms) handles.push_back(m->primary_handle());
  const std::size_t serialized =
      P::serialize_many(std::span<const typename P::Handle>(handles));
  for (AsymmetricMutex<P>* m : ms) m->finish_secondary_wave();
  return serialized;
}

/// Release a wave in reverse acquisition order.
template <FencePolicy P>
void unlock_secondary_wave(std::span<AsymmetricMutex<P>* const> ms) {
  for (std::size_t i = ms.size(); i-- > 0;) ms[i]->unlock_secondary();
}

/// RAII guards binding a role to a scope.
template <typename Mutex>
class PrimaryLockGuard {
 public:
  explicit PrimaryLockGuard(Mutex& m) noexcept : m_(m) { m_.lock_primary(); }
  ~PrimaryLockGuard() { m_.unlock_primary(); }
  PrimaryLockGuard(const PrimaryLockGuard&) = delete;
  PrimaryLockGuard& operator=(const PrimaryLockGuard&) = delete;

 private:
  Mutex& m_;
};

template <typename Mutex>
class SecondaryLockGuard {
 public:
  explicit SecondaryLockGuard(Mutex& m) : m_(m) { m_.lock_secondary(); }
  ~SecondaryLockGuard() { m_.unlock_secondary(); }
  SecondaryLockGuard(const SecondaryLockGuard&) = delete;
  SecondaryLockGuard& operator=(const SecondaryLockGuard&) = delete;

 private:
  Mutex& m_;
};

}  // namespace lbmf
