#pragma once

#include <mutex>

#include "lbmf/dekker/dekker.hpp"

namespace lbmf {

/// The *augmented* Dekker protocol the paper's motivating applications use
/// (Sec. 1): one primary thread enters often and cheaply; any number of
/// secondary threads first compete for the right to synchronize with the
/// primary (an internal gate lock) and the winner then runs the two-party
/// asymmetric Dekker protocol. Biased locks, JVM safepoints and
/// work-stealing deques all share this shape.
template <FencePolicy P>
class AsymmetricMutex {
 public:
  using Policy = P;

  /// Primary-thread registration; same contract as AsymmetricDekker.
  void bind_primary() { dekker_.bind_primary(); }
  void unbind_primary() { dekker_.unbind_primary(); }

  /// Fast path, primary only.
  void lock_primary() noexcept { dekker_.lock_primary(); }
  void unlock_primary() noexcept { dekker_.unlock_primary(); }
  bool try_lock_primary() noexcept { return dekker_.try_lock_primary(); }

  /// Slow path, any non-primary thread.
  void lock_secondary() {
    gate_.lock();
    dekker_.lock_secondary();
  }

  void unlock_secondary() {
    dekker_.unlock_secondary();
    gate_.unlock();
  }

  bool try_lock_secondary() {
    if (!gate_.try_lock()) return false;
    if (!dekker_.try_lock_secondary()) {
      gate_.unlock();
      return false;
    }
    return true;
  }

  DekkerStats stats() const noexcept { return dekker_.stats(); }
  void reset_stats() noexcept { dekker_.reset_stats(); }

 private:
  AsymmetricDekker<P> dekker_;
  std::mutex gate_;
};

/// RAII guards binding a role to a scope.
template <typename Mutex>
class PrimaryLockGuard {
 public:
  explicit PrimaryLockGuard(Mutex& m) noexcept : m_(m) { m_.lock_primary(); }
  ~PrimaryLockGuard() { m_.unlock_primary(); }
  PrimaryLockGuard(const PrimaryLockGuard&) = delete;
  PrimaryLockGuard& operator=(const PrimaryLockGuard&) = delete;

 private:
  Mutex& m_;
};

template <typename Mutex>
class SecondaryLockGuard {
 public:
  explicit SecondaryLockGuard(Mutex& m) : m_(m) { m_.lock_secondary(); }
  ~SecondaryLockGuard() { m_.unlock_secondary(); }
  SecondaryLockGuard(const SecondaryLockGuard&) = delete;
  SecondaryLockGuard& operator=(const SecondaryLockGuard&) = delete;

 private:
  Mutex& m_;
};

}  // namespace lbmf
