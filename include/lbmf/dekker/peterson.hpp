#pragma once

#include <atomic>
#include <cstdint>

#include "lbmf/core/policies.hpp"
#include "lbmf/util/cacheline.hpp"
#include "lbmf/util/check.hpp"
#include "lbmf/util/spin.hpp"

namespace lbmf {

/// Peterson's two-thread mutual exclusion with a location-based fence on
/// the primary's announce — the paper's Sec. 7 future-work question ("what
/// other algorithms can benefit") realized on real hardware. The simulator
/// proves the scheme exhaustively (PetersonExhaustive tests); this is the
/// same protocol over std::atomic and the FencePolicy machinery.
///
/// Peterson's announce is TWO stores (flag[i] = 1; turn = peer), yet one
/// l-mfence on the *last* store suffices on TSO: the store buffer drains in
/// FIFO order, so any serialization that completes `turn` has already
/// completed `flag[i]`. The secondary therefore serializes the primary once
/// per announce and then reads both variables.
///
/// Unlike Dekker, Peterson needs no extra tie-breaking: the turn word makes
/// the last announcer defer, giving deadlock- and livelock-freedom for two
/// threads out of the box.
template <FencePolicy P>
class AsymmetricPeterson {
 public:
  using Policy = P;

  AsymmetricPeterson() = default;
  AsymmetricPeterson(const AsymmetricPeterson&) = delete;
  AsymmetricPeterson& operator=(const AsymmetricPeterson&) = delete;

  /// Register the calling thread as the primary; same lifetime contract as
  /// AsymmetricDekker (bind before secondaries run, unbind after they
  /// quiesce, both on the primary thread).
  void bind_primary() {
    LBMF_CHECK_MSG(!bound_, "AsymmetricPeterson primary already bound");
    handle_ = P::register_primary();
    bound_ = true;
  }

  void unbind_primary() {
    if (bound_) {
      P::unregister_primary(handle_);
      bound_ = false;
    }
  }

  ~AsymmetricPeterson() {
    LBMF_CHECK_MSG(!bound_, "unbind_primary not called");
  }

  /// The registered primary's policy handle (valid between bind/unbind).
  typename P::Handle primary_handle() const noexcept { return handle_; }

  void lock_primary() noexcept {
    // Announce: flag, then turn — the l-mfence conceptually guards `turn`,
    // and FIFO store-buffer order covers `flag` (see class comment).
    compiler_fence();
    flag_[0]->store(1, std::memory_order_relaxed);
    turn_->store(kPrimaryToken, std::memory_order_relaxed);
    P::primary_fence();
    SpinWait w;
    while (flag_[1]->load(std::memory_order_acquire) != 0 &&
           turn_->load(std::memory_order_acquire) == kPrimaryToken) {
      w.wait();
    }
  }

  void unlock_primary() noexcept {
    flag_[0]->store(0, std::memory_order_release);
  }

  void lock_secondary() {
    flag_[1]->store(1, std::memory_order_relaxed);
    turn_->store(kSecondaryToken, std::memory_order_relaxed);
    P::secondary_fence();
    P::serialize(handle_);  // expose the primary's buffered announce
    SpinWait w;
    while (flag_[0]->load(std::memory_order_acquire) != 0 &&
           turn_->load(std::memory_order_acquire) == kSecondaryToken) {
      w.wait();
    }
  }

  void unlock_secondary() noexcept {
    flag_[1]->store(0, std::memory_order_release);
  }

 private:
  static constexpr int kPrimaryToken = 1;
  static constexpr int kSecondaryToken = 2;

  CacheAligned<std::atomic<int>> flag_[2];
  CacheAligned<std::atomic<int>> turn_;
  typename P::Handle handle_{};
  bool bound_ = false;
};

}  // namespace lbmf
