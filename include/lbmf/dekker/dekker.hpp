#pragma once

#include <atomic>
#include <cstdint>

#include "lbmf/core/policies.hpp"
#include "lbmf/util/cacheline.hpp"
#include "lbmf/util/check.hpp"
#include "lbmf/util/counters.hpp"
#include "lbmf/util/spin.hpp"

namespace lbmf {

/// Event counters for the Dekker protocol; these feed the analytic cost
/// model (how many fences were avoided, how many remote serializations were
/// paid — the quantities Sec. 5 of the paper reasons with). Internally each
/// side writes only its own cache-line-separated half, so counter updates
/// never race each other — but stats() reads both halves from arbitrary
/// threads, so the live halves are relaxed atomics (SideStats) and this
/// struct is the plain merged snapshot.
struct DekkerStats {
  std::uint64_t primary_acquires = 0;
  std::uint64_t primary_fences = 0;     // primary_fence() executions
  std::uint64_t secondary_acquires = 0;
  std::uint64_t secondary_fences = 0;   // secondary_fence() executions
  std::uint64_t serializations = 0;     // remote serialize() calls
  std::uint64_t primary_serializations = 0;  // peer drains (double-l-mfence)
  std::uint64_t primary_retreats = 0;   // tie-break backoffs (primary)
  std::uint64_t secondary_retreats = 0; // tie-break backoffs (secondary)
};

/// The asymmetric Dekker protocol of Fig. 3(a), augmented with the classic
/// turn variable so it is livelock-free (the paper presents the simplified
/// version and notes the full protocol adds exactly this tie-breaking).
///
/// Roles are fixed: the *primary* is the frequent entrant whose fence the
/// protocol optimizes away (its announce path runs P::primary_fence(), a
/// compiler fence under asymmetric policies); the *secondary* pays a real
/// fence plus a remote serialization of the primary before every
/// mutual-exclusion-deciding read of the primary's flag.
///
/// Why one serialization per announce suffices: the secondary's intent store
/// is globally visible before its first read of the primary flag (it issued
/// mfence), so from that point on any primary announce will observe the
/// secondary's flag and retreat. The only store the secondary can miss is a
/// primary flag-store still sitting in the primary's store buffer from
/// *before* the secondary's fence — and serialize() flushes exactly that
/// buffer. Spin re-reads between retreats therefore use plain loads.
template <FencePolicy P>
class AsymmetricDekker {
 public:
  using Policy = P;

  AsymmetricDekker() = default;
  AsymmetricDekker(const AsymmetricDekker&) = delete;
  AsymmetricDekker& operator=(const AsymmetricDekker&) = delete;

  /// Register the calling thread as the primary. Must happen-before any
  /// lock_secondary() on other threads (e.g. sequenced before launching
  /// them) and the primary must stay registered while secondaries run.
  void bind_primary() {
    LBMF_CHECK_MSG(!bound_, "AsymmetricDekker primary already bound");
    handle_ = P::register_primary();
    bound_ = true;
  }

  void unbind_primary() {
    if (bound_) {
      P::unregister_primary(handle_);
      bound_ = false;
    }
  }

  ~AsymmetricDekker() { LBMF_CHECK_MSG(!bound_, "unbind_primary not called"); }

  // ------------------------------------------------------------------
  // Primary side (single thread, the one that called bind_primary()).
  // ------------------------------------------------------------------

  void lock_primary() noexcept {
    announce_primary();
    bump_relaxed(pstats_->acquires);
    SpinWait waiter;
    while (flag_[1]->load(std::memory_order_acquire) != 0) {
      if (turn_->load(std::memory_order_acquire) != 0) {
        // Not our turn: retreat so the secondary can proceed, wait for the
        // turn to come back, then re-announce (which needs a fresh fence).
        flag_[0]->store(0, std::memory_order_release);
        bump_relaxed(pstats_->retreats);
        waiter.reset();
        while (turn_->load(std::memory_order_acquire) != 0) waiter.wait();
        announce_primary();
      } else {
        waiter.wait();
      }
    }
  }

  void unlock_primary() noexcept {
    turn_->store(1, std::memory_order_release);
    flag_[0]->store(0, std::memory_order_release);
  }

  /// Non-blocking primary entry: returns false instead of waiting out the
  /// secondary. This is the shape work-stealing victims use (Cilk-5 pops
  /// fall back to a slow path rather than spin).
  bool try_lock_primary() noexcept {
    announce_primary();
    bump_relaxed(pstats_->acquires);
    if (flag_[1]->load(std::memory_order_acquire) != 0) {
      flag_[0]->store(0, std::memory_order_release);
      bump_relaxed(pstats_->retreats);
      return false;
    }
    return true;
  }

  // ------------------------------------------------------------------
  // Secondary side. With more than one prospective secondary, callers must
  // first win an external gate (see AsymmetricMutex) — the Dekker pair is
  // strictly two-party.
  // ------------------------------------------------------------------

  void lock_secondary() {
    announce_secondary();
    bump_relaxed(sstats_->acquires);
    await_secondary();
  }

  // The three phases of lock_secondary() exposed separately so a caller
  // acquiring MANY Dekker pairs at once (lock_secondary_wave in
  // asymmetric_mutex.hpp) can post every intent store first, issue one
  // hardware fence for the whole set, serialize every primary in one
  // overlapped P::serialize_many wave, and only then run the per-pair
  // waits. Splitting is sound because announce_secondary() is just
  // {intent store; fence; serialize} and neither the fence nor the
  // serialization reads per-pair state: one fence after all the intent
  // stores orders each of them before every subsequent flag read, and the
  // wave gives each primary the same flush serialize() would have.

  /// Phase 1: publish the intent store only — no fence, no serialization.
  void post_secondary() noexcept {
    flag_[1]->store(1, std::memory_order_relaxed);
    bump_relaxed(sstats_->acquires);
  }

  /// Phase 2 bookkeeping: the caller issued the collective fence and the
  /// serialization wave; account them against this pair's counters so
  /// stats() stays comparable with the sequential path.
  void note_wave_serialization() noexcept {
    bump_relaxed(sstats_->fences);
    bump_relaxed(sstats_->serializations);
  }

  /// Phase 3: the mutual-exclusion wait. A retreat re-announces from
  /// scratch (fresh fence + serialization), exactly as in lock_secondary.
  void await_secondary() {
    SpinWait waiter;
    while (flag_[0]->load(std::memory_order_acquire) != 0) {
      if (turn_->load(std::memory_order_acquire) != 1) {
        flag_[1]->store(0, std::memory_order_release);
        bump_relaxed(sstats_->retreats);
        waiter.reset();
        while (turn_->load(std::memory_order_acquire) != 1) waiter.wait();
        announce_secondary();
      } else {
        waiter.wait();
      }
    }
  }

  void unlock_secondary() noexcept {
    turn_->store(0, std::memory_order_release);
    flag_[1]->store(0, std::memory_order_release);
  }

  bool try_lock_secondary() {
    announce_secondary();
    bump_relaxed(sstats_->acquires);
    if (flag_[0]->load(std::memory_order_acquire) != 0) {
      flag_[1]->store(0, std::memory_order_release);
      bump_relaxed(sstats_->retreats);
      return false;
    }
    return true;
  }

  /// Merged snapshot of both sides' counters. Exact once both threads have
  /// quiesced; approximate (but tear-free per field — relaxed atomic loads)
  /// while they run.
  /// The registered primary's policy handle, for callers that batch
  /// serializations across pairs (P::serialize_many). Valid only between
  /// bind_primary() and unbind_primary().
  typename P::Handle primary_handle() const noexcept { return handle_; }

  DekkerStats stats() const noexcept {
    DekkerStats s;
    s.primary_acquires = pstats_->acquires.load(std::memory_order_relaxed);
    s.primary_fences = pstats_->fences.load(std::memory_order_relaxed);
    s.primary_retreats = pstats_->retreats.load(std::memory_order_relaxed);
    s.primary_serializations =
        pstats_->serializations.load(std::memory_order_relaxed);
    s.secondary_acquires = sstats_->acquires.load(std::memory_order_relaxed);
    s.secondary_fences = sstats_->fences.load(std::memory_order_relaxed);
    s.secondary_retreats = sstats_->retreats.load(std::memory_order_relaxed);
    s.serializations = sstats_->serializations.load(std::memory_order_relaxed);
    return s;
  }

  void reset_stats() noexcept {
    pstats_->reset();
    sstats_->reset();
  }

 private:
  /// Lines K1 of Fig. 3(a): l-mfence(&L1, 1). Under a policy whose realized
  /// regime is double-l-mfence, serialize_peers drains the secondary before
  /// our conflict-deciding read of its flag (and is itself a full barrier on
  /// this side) — the primary-side mirror of the secondary's serialize().
  /// For every other policy/regime it returns false without remote work.
  void announce_primary() noexcept {
    compiler_fence();
    flag_[0]->store(1, std::memory_order_relaxed);
    P::primary_fence();
    bump_relaxed(pstats_->fences);
    if (P::serialize_peers(handle_)) bump_relaxed(pstats_->serializations);
  }

  /// Lines J1-J2 of Fig. 3(a) plus the remote trigger: L2 = 1; mfence (or,
  /// in the double-l-mfence regime, compiler fence — the handle-aware
  /// secondary_fence dispatches); force the primary to serialize before we
  /// read L1.
  void announce_secondary() {
    flag_[1]->store(1, std::memory_order_relaxed);
    P::secondary_fence(handle_);
    bump_relaxed(sstats_->fences);
    if (P::serialize(handle_)) bump_relaxed(sstats_->serializations);
  }

  // One side's counters: single writer (that side's thread), read by
  // stats() from anywhere — relaxed atomics bumped without a lock prefix
  // (bump_relaxed), so instrumentation adds no hidden fence to the
  // announce paths.
  struct SideStats {
    std::atomic<std::uint64_t> acquires{0};
    std::atomic<std::uint64_t> fences{0};
    std::atomic<std::uint64_t> retreats{0};
    // Remote drains: serialize() on the secondary side, serialize_peers()
    // (double-l-mfence) on the primary side.
    std::atomic<std::uint64_t> serializations{0};

    void reset() noexcept {
      acquires.store(0, std::memory_order_relaxed);
      fences.store(0, std::memory_order_relaxed);
      retreats.store(0, std::memory_order_relaxed);
      serializations.store(0, std::memory_order_relaxed);
    }
  };

  CacheAligned<std::atomic<int>> flag_[2];
  CacheAligned<std::atomic<int>> turn_;
  CacheAligned<SideStats> pstats_;  // written by the primary only
  CacheAligned<SideStats> sstats_;  // written by the secondary only
  typename P::Handle handle_{};
  bool bound_ = false;
};

}  // namespace lbmf
