#pragma once

#include <atomic>
#include <mutex>

#include <pthread.h>

#include "lbmf/core/policies.hpp"
#include "lbmf/util/cacheline.hpp"
#include "lbmf/util/spin.hpp"

namespace lbmf {

/// A biased lock in the style of the paper's first motivating application
/// (Sec. 1: Java monitors with biased locking [7, 16, 21]): the first
/// thread to acquire becomes the *bias holder* and from then on acquires
/// and releases with neither an atomic RMW nor a hardware fence — just the
/// l-mfence announce. Any other thread must first *revoke* the bias: it
/// publishes a revoke request, remotely serializes the holder (the
/// location-based trigger), waits for the holder to leave its critical
/// section, and permanently downgrades the lock to a plain mutex.
///
/// The related-work biased locks either rely on the unsafe "collocation
/// trick" ([7, 21], see Sec. 6) or can deadlock when nested ([23]); the
/// l-mfence construction needs neither, because the revoker forces the
/// holder's store buffer out from the outside.
template <FencePolicy P>
class BiasedLock {
 public:
  BiasedLock() = default;
  BiasedLock(const BiasedLock&) = delete;
  BiasedLock& operator=(const BiasedLock&) = delete;

  ~BiasedLock() {
    // A still-registered bias without revocation is released lazily; the
    // registration belongs to the holder thread, which must have called
    // release_bias() (or been revoked) before the lock dies.
  }

  void lock() {
    if (state_->load(std::memory_order_acquire) == State::kRevoked) {
      holder_maybe_unregister();
      fallback_.lock();
      return;
    }
    const pthread_t self = pthread_self();
    State expected = State::kUnbiased;
    if (state_->compare_exchange_strong(expected, State::kBiasing,
                                        std::memory_order_acq_rel)) {
      // First locker: claim the bias for this thread.
      holder_thread_ = self;
      handle_ = P::register_primary();
      holder_registered_ = true;
      state_->store(State::kBiased, std::memory_order_release);
      lock_biased_fast();
      return;
    }
    // Wait out a concurrent claim.
    SpinWait w;
    while (state_->load(std::memory_order_acquire) == State::kBiasing) {
      w.wait();
    }
    if (state_->load(std::memory_order_acquire) == State::kBiased &&
        pthread_equal(holder_thread_, self)) {
      lock_biased_fast();
      return;
    }
    // Someone else owns the bias (or it is being revoked): revoke, then
    // fall back to the mutex forever.
    revoke();
    fallback_.lock();
  }

  void unlock() {
    if (state_->load(std::memory_order_acquire) == State::kBiased &&
        pthread_equal(holder_thread_, pthread_self()) &&
        holder_flag_->load(std::memory_order_relaxed) != 0) {
      holder_flag_->store(0, std::memory_order_release);
      ++fast_releases_;
      return;
    }
    fallback_.unlock();
  }

  /// The bias holder relinquishes its bias voluntarily (e.g. before thread
  /// exit). Must be called by the holder, outside the critical section,
  /// with no concurrent lock attempts by other threads (they could be
  /// mid-revocation against our registration).
  void release_bias() {
    if (state_->load(std::memory_order_acquire) != State::kBiased) return;
    if (!pthread_equal(holder_thread_, pthread_self())) return;
    state_->store(State::kRevoked, std::memory_order_release);
    holder_maybe_unregister();
  }

  bool is_biased() const noexcept {
    return state_->load(std::memory_order_acquire) == State::kBiased;
  }

  std::uint64_t fast_acquires() const noexcept { return fast_acquires_; }
  std::uint64_t fast_releases() const noexcept { return fast_releases_; }
  std::uint64_t revocations() const noexcept {
    return revocations_.load(std::memory_order_relaxed);
  }

 private:
  enum class State : int { kUnbiased, kBiasing, kBiased, kRevoked };

  void lock_biased_fast() {
    // The asymmetric Dekker announce: flag := 1 with l-mfence semantics,
    // then check for a pending revoker.
    SpinWait w;
    for (;;) {
      compiler_fence();
      holder_flag_->store(1, std::memory_order_relaxed);
      P::primary_fence();  // compiler-only under the asymmetric policies
      if (revoke_pending_->load(std::memory_order_acquire) == 0 &&
          state_->load(std::memory_order_acquire) == State::kBiased) {
        ++fast_acquires_;
        return;  // bias fast path: no RMW, no hardware fence
      }
      // A revoker is waiting (or won): retreat and take the slow path.
      holder_flag_->store(0, std::memory_order_release);
      while (revoke_pending_->load(std::memory_order_acquire) != 0) w.wait();
      if (state_->load(std::memory_order_acquire) == State::kRevoked) {
        holder_maybe_unregister();
        fallback_.lock();
        return;
      }
    }
  }

  /// Holder-thread-only: drop the serializer registration once the bias is
  /// gone. Safe because after kRevoked is visible no revoker issues another
  /// serialize() (revoke() early-returns under its gate).
  void holder_maybe_unregister() {
    if (holder_registered_ && pthread_equal(holder_thread_, pthread_self()) &&
        state_->load(std::memory_order_acquire) == State::kRevoked) {
      P::unregister_primary(handle_);
      holder_registered_ = false;
    }
  }

  void revoke() {
    std::lock_guard<std::mutex> g(revoke_gate_);
    State st = state_->load(std::memory_order_acquire);
    if (st == State::kRevoked) return;  // somebody beat us to it
    // Dekker secondary side: announce the revoke, serialize the holder so
    // a flag=1 parked in its store buffer becomes visible, then wait for
    // the holder to leave.
    revoke_pending_->store(1, std::memory_order_relaxed);
    P::secondary_fence();
    P::serialize(handle_);
    SpinWait w;
    while (holder_flag_->load(std::memory_order_acquire) != 0) w.wait();
    // The holder is out and will observe revoke_pending before re-entering.
    state_->store(State::kRevoked, std::memory_order_release);
    revoke_pending_->store(0, std::memory_order_release);
    revocations_.fetch_add(1, std::memory_order_relaxed);
  }

  CacheAligned<std::atomic<State>> state_{State::kUnbiased};
  CacheAligned<std::atomic<int>> holder_flag_{0};
  CacheAligned<std::atomic<int>> revoke_pending_{0};
  pthread_t holder_thread_{};
  typename P::Handle handle_{};
  bool holder_registered_ = false;  // holder-thread-only
  std::uint64_t fast_acquires_ = 0;  // holder-only
  std::uint64_t fast_releases_ = 0;  // holder-only
  std::atomic<std::uint64_t> revocations_{0};
  std::mutex fallback_;
  std::mutex revoke_gate_;
};

}  // namespace lbmf
