#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>

#include "lbmf/core/policies.hpp"
#include "lbmf/util/cacheline.hpp"
#include "lbmf/util/check.hpp"
#include "lbmf/util/spin.hpp"

namespace lbmf {

/// A stop-the-world safepoint mechanism in the style of the paper's second
/// motivating application (Sec. 1: the JVM uses the Dekker duality to
/// coordinate mutator threads running outside the VM with the garbage
/// collector).
///
/// Mutator threads are the *primaries*: their safepoint poll — executed on
/// every loop iteration of real work — is a plain load plus, on region
/// transitions, an l-mfence-style announce (no hardware fence under the
/// asymmetric policies). The coordinator is the *secondary*: to stop the
/// world it publishes a request, fences, remotely serializes every
/// registered mutator (exposing any in-flight state transition parked in a
/// store buffer), and waits until each mutator is either parked at a poll
/// or inside a *safe region* (the JNI-outside-the-VM analogue, where its
/// state is guaranteed stable).
template <FencePolicy P>
class Safepoint {
 private:
  struct Slot;  // declared early: MutatorToken signatures reference it

 public:
  static constexpr std::size_t kMaxMutators = 64;

  Safepoint() = default;
  Safepoint(const Safepoint&) = delete;
  Safepoint& operator=(const Safepoint&) = delete;

  /// Per-thread mutator registration (RAII). Create and destroy on the
  /// mutator's own thread; do not outlive the Safepoint.
  class MutatorToken {
   public:
    MutatorToken(MutatorToken&& o) noexcept : sp_(o.sp_), slot_(o.slot_) {
      o.sp_ = nullptr;
    }
    MutatorToken(const MutatorToken&) = delete;
    MutatorToken& operator=(const MutatorToken&) = delete;
    MutatorToken& operator=(MutatorToken&&) = delete;
    ~MutatorToken() {
      if (sp_ != nullptr) sp_->unregister_mutator(*this);
    }

    /// The hot-path poll: nearly free when no safepoint is pending. Parks
    /// (spins) while a stop-the-world is in progress.
    void poll() {
      Slot& s = *sp_->slots_[slot_];
      if (sp_->request_->load(std::memory_order_acquire) == 0) return;
      park(s);
    }

    /// Enter a safe region (e.g. a blocking syscall): the coordinator will
    /// not wait for this thread while it is inside.
    void enter_safe_region() {
      Slot& s = *sp_->slots_[slot_];
      s.state.store(State::kSafe, std::memory_order_release);
      // No fence needed: transitioning INTO safety can only help the
      // coordinator; at worst it serializes us once redundantly.
    }

    /// Leave the safe region. This is the Dekker announce: we must not
    /// resume mutating while a stop-the-world is in progress, and the
    /// coordinator must not miss our transition back to running.
    void leave_safe_region() {
      Slot& s = *sp_->slots_[slot_];
      for (;;) {
        compiler_fence();
        s.state.store(State::kRunning, std::memory_order_relaxed);
        P::primary_fence();  // compiler-only under asymmetric policies
        if (sp_->request_->load(std::memory_order_acquire) == 0) return;
        // A stop-the-world is pending: step back into safety and wait.
        s.state.store(State::kSafe, std::memory_order_release);
        SpinWait w;
        while (sp_->request_->load(std::memory_order_acquire) != 0) w.wait();
      }
    }

    std::uint64_t times_parked() const noexcept {
      return sp_->slots_[slot_]->parks.load(std::memory_order_relaxed);
    }

   private:
    friend class Safepoint;
    MutatorToken(Safepoint* sp, std::size_t slot) : sp_(sp), slot_(slot) {}

    void park(Slot& s) {
      s.state.store(State::kParked, std::memory_order_release);
      s.parks.fetch_add(1, std::memory_order_relaxed);
      SpinWait w;
      while (sp_->request_->load(std::memory_order_acquire) != 0) w.wait();
      // Same announce discipline as leave_safe_region: resume visibly.
      compiler_fence();
      s.state.store(State::kRunning, std::memory_order_relaxed);
      P::primary_fence();
      if (sp_->request_->load(std::memory_order_acquire) != 0) park(s);
    }

    Safepoint* sp_;
    std::size_t slot_;
  };

  /// Register the calling thread as a mutator (initially running).
  MutatorToken register_mutator() {
    for (std::size_t i = 0; i < kMaxMutators; ++i) {
      Slot& s = *slots_[i];
      bool expected = false;
      if (!s.used.load(std::memory_order_relaxed) &&
          s.used.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
        s.handle = P::register_primary();
        s.state.store(State::kRunning, std::memory_order_relaxed);
        s.live.store(true, std::memory_order_release);
        std::size_t hw = high_water_.load(std::memory_order_relaxed);
        while (hw < i + 1 && !high_water_.compare_exchange_weak(
                                 hw, i + 1, std::memory_order_acq_rel)) {
        }
        return MutatorToken(this, i);
      }
    }
    LBMF_CHECK_MSG(false, "Safepoint mutator slots exhausted");
    return MutatorToken(this, 0);  // unreachable
  }

  /// Stop the world, run `action` while every mutator is parked or safe,
  /// then release them. Callable from any non-mutator thread (or a mutator
  /// inside its own safe region).
  template <typename Action>
  void stop_the_world(Action&& action) {
    std::lock_guard<std::mutex> g(coordinator_gate_);
    request_->store(1, std::memory_order_relaxed);
    P::secondary_fence();
    // Remote-serialize every mutator with one batched wave so an in-flight
    // kRunning announce parked in a store buffer becomes visible before we
    // sample its state. The overlapped wave means stopping the world costs
    // the slowest mutator's round trip, not the sum over all mutators.
    const std::size_t hw = high_water_.load(std::memory_order_acquire);
    std::array<typename P::Handle, kMaxMutators> wave;
    std::array<Slot*, kMaxMutators> pending;
    std::size_t n = 0;
    for (std::size_t i = 0; i < hw; ++i) {
      Slot& s = *slots_[i];
      if (!s.live.load(std::memory_order_acquire)) continue;
      wave[n] = s.handle;
      pending[n] = &s;
      ++n;
    }
    P::serialize_many(std::span<const typename P::Handle>(wave.data(), n));
    for (std::size_t i = 0; i < n; ++i) {
      SpinWait w;
      while (pending[i]->state.load(std::memory_order_acquire) ==
             State::kRunning) {
        w.wait();
      }
    }
    ++stops_;
    action();
    request_->store(0, std::memory_order_release);
  }

  std::uint64_t stops() const noexcept { return stops_; }

 private:
  enum class State : int { kRunning, kParked, kSafe };

  struct Slot {
    std::atomic<State> state{State::kRunning};
    std::atomic<bool> used{false};
    std::atomic<bool> live{false};
    std::atomic<std::uint64_t> parks{0};
    typename P::Handle handle{};
  };

  void unregister_mutator(MutatorToken& t) {
    Slot& s = *slots_[t.slot_];
    // Exclude a coordinator that may be about to serialize us.
    std::lock_guard<std::mutex> g(coordinator_gate_);
    s.live.store(false, std::memory_order_release);
    P::unregister_primary(s.handle);
    s.used.store(false, std::memory_order_release);
  }

  CacheAligned<Slot> slots_[kMaxMutators];
  CacheAligned<std::atomic<int>> request_{0};
  std::mutex coordinator_gate_;
  std::atomic<std::size_t> high_water_{0};
  std::uint64_t stops_ = 0;  // coordinator-gate-protected
};

}  // namespace lbmf
