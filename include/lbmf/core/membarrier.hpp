#pragma once

namespace lbmf {

/// Linux membarrier(2)-based remote serialization — the mechanism that
/// mainline kernels grew in the years after this paper, implementing exactly
/// the asymmetric-fence idea: the fast side pays a compiler fence only; the
/// slow side issues one syscall that IPIs every core running this process,
/// forcing each to serialize.
///
/// Compared to the paper's per-thread signal prototype this is a broadcast
/// (it serializes *all* threads, not just the one guarding the location), so
/// it is a semantic superset of SerializerRegistry::serialize and needs no
/// per-primary registration or handshake.
namespace membarrier {

/// True if MEMBARRIER_CMD_PRIVATE_EXPEDITED is supported and registration
/// succeeded. Must be called (at least once) before barrier(); idempotent.
bool available() noexcept;

/// Issue the expedited private membarrier: returns after every thread of
/// this process has executed a full memory barrier. Falls back to a local
/// full fence (which is NOT a remote serialization) if unsupported — callers
/// must gate on available().
void barrier() noexcept;

}  // namespace membarrier
}  // namespace lbmf
