#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>

#include <pthread.h>

#include "lbmf/util/cacheline.hpp"

namespace lbmf {

/// Signal-based remote serialization — the paper's software prototype of
/// l-mfence (Sec. 5, "Software Prototype of l-mfence").
///
/// A thread that wants to act as a *primary* (the thread whose fences we
/// optimize away) registers itself and receives a slot. A *secondary* thread
/// that is about to read a location guarded by the primary's l-mfence calls
/// serialize(slot): it posts a POSIX signal to the primary and spins until
/// the primary's handler acknowledges. Delivering the signal forces the
/// primary's core through a kernel entry/exit, which drains its store buffer
/// — exactly the serialization a remote mfence would provide — and the
/// acknowledgment tells the secondary the drain has happened, so its
/// subsequent load observes every store the primary had committed.
///
/// The round trip costs ~10,000 cycles (paper, Sec. 5), so the registry is
/// built to make it pay once, not N times:
///
///  * **Request coalescing** — serialize() bumps `req_seq` but posts a
///    signal only when no request is already in flight (`in_flight`, cleared
///    by the handler before it publishes `ack_seq`). K concurrent
///    secondaries targeting one primary share one kernel round trip; each
///    still waits until `ack_seq` covers its own request, so the guarantee
///    per caller is unchanged.
///
///  * **Batched fan-out** — serialize_many() posts the signals for a whole
///    set of primaries first and only then collects the acks, so N round
///    trips overlap into one wave whose latency is the max, not the sum.
///
/// The handler is async-signal-safe: it touches only lock-free std::atomic
/// fields of the registered slot.
class SerializerRegistry {
 public:
  /// One registered primary thread. The groups below are cache-line
  /// separated so the secondaries' request traffic (req_seq/in_flight) does
  /// not false-share with the ack word the primary's handler writes.
  struct Slot {
    // -- written by secondaries --------------------------------------------
    alignas(kCacheLineSize) std::atomic<std::uint64_t> req_seq{0};
    std::atomic<bool> in_flight{false};  // a posted signal is not yet acked
    std::atomic<std::uint64_t> signals_posted{0};  // pthread_kill calls
    std::atomic<std::uint64_t> resignals{0};       // re-posts after a stall
    // -- written by the primary's handler ----------------------------------
    alignas(kCacheLineSize) std::atomic<std::uint64_t> ack_seq{0};
    std::atomic<std::uint32_t> ack_event{0};  // eventcount for parked waiters
    std::atomic<std::uint64_t> signals_received{0};  // handler invocations
    // -- registration metadata (rarely written) ----------------------------
    alignas(kCacheLineSize) std::atomic<bool> used{false};  // slot claimed
    std::atomic<bool> live{false};  // registration published (store-release)
    pthread_t thread{};
  };

  /// Opaque handle a secondary uses to target a primary.
  class Handle {
   public:
    Handle() = default;
    bool valid() const noexcept { return slot_ != nullptr; }

   private:
    friend class SerializerRegistry;
    explicit Handle(Slot* s) noexcept : slot_(s) {}
    Slot* slot_ = nullptr;
  };

  static constexpr std::size_t kMaxPrimaries = 256;

  /// Ack-wait shape: a secondary first spins kAckSpinRounds single-pause
  /// rounds (a few µs — covers an ack arriving at cross-core latency), then
  /// parks on the slot's ack eventcount — a futex the handler wakes — so K
  /// coalesced waiters stop competing with the primary for the CPU while
  /// their shared round trip is in flight. The spin phase is deliberately
  /// short and yield-free: on an oversubscribed host a spinning waiter
  /// actively delays the very handler it is waiting for.
  static constexpr int kAckSpinRounds = 64;
  /// Nanoseconds per bounded park before the waiter rechecks the ack.
  static constexpr long kAckParkNanos = 1'000'000;  // 1 ms
  /// Parks tolerated before re-posting the signal (defense against a lost
  /// or indefinitely delayed delivery — e.g. the primary briefly blocking
  /// the signal). A re-post is always sound (the handler is idempotent);
  /// the budget only bounds how long a stall can go unnoticed. Re-posts are
  /// counted in Slot::resignals.
  static constexpr int kResignalParkBudget = 4;

  /// Process-wide registry (installs the signal handler on first use).
  static SerializerRegistry& instance();

  /// Register the calling thread as a primary. Must be paired with
  /// unregister_self() on the same thread before it exits. Returns an
  /// invalid handle if the registry is full.
  Handle register_self();

  /// Remove the calling thread's registration.
  void unregister_self(Handle& h);

  /// Force the primary identified by `h` to serialize its instruction
  /// stream, and return only after it has done so. Safe to call from any
  /// thread except the primary itself; calling it on a dead/unregistered
  /// handle is a no-op. Returns false if the slot was not live. Coalesces:
  /// if another secondary's signal is already in flight, no new signal is
  /// posted — the shared handler run acknowledges both requests.
  bool serialize(const Handle& h);

  /// serialize() without request coalescing: every call posts its own
  /// signal and spin-waits for the covering ack. This is the pre-batching
  /// serialize path, kept verbatim as the measured baseline for the
  /// coalescing win (bench_roundtrip E15).
  bool serialize_uncoalesced(const Handle& h);

  /// Batched fan-out: serialize every primary in `hs` with one overlapped
  /// wave — all signals are posted first, then all acks are collected, so
  /// the wall-clock cost is the slowest round trip instead of the sum.
  /// Invalid and dead handles are skipped; a handle naming the calling
  /// thread degenerates to one local fence. Returns the number of handles
  /// successfully serialized (== hs.size() when all were live).
  std::size_t serialize_many(std::span<const Handle> hs);

  /// Number of signals a primary's handler has run (for event accounting).
  static std::uint64_t signals_received(const Handle& h) noexcept {
    return h.slot_ ? h.slot_->signals_received.load(std::memory_order_relaxed)
                   : 0;
  }

  /// Number of pthread_kill calls posted at this primary. With coalescing
  /// engaged this grows sublinearly in the number of serialize() calls.
  static std::uint64_t signals_posted(const Handle& h) noexcept {
    return h.slot_ ? h.slot_->signals_posted.load(std::memory_order_relaxed)
                   : 0;
  }

  /// Number of re-posts after an ack-wait exhausted kResignalWaitBudget
  /// (observability for lost/stalled deliveries; 0 in healthy runs).
  static std::uint64_t resignals(const Handle& h) noexcept {
    return h.slot_ ? h.slot_->resignals.load(std::memory_order_relaxed) : 0;
  }

  /// The signal number used for serialization requests (SIGURG by default:
  /// rarely used by applications and ignored by default, so a stray late
  /// delivery after unregistration cannot kill the process).
  static int signal_number() noexcept;

  /// Decayed (EWMA, α = 1/8) estimate of the wall-clock serialize() round
  /// trip in TSC cycles, measured across request-to-ack on every coalesced
  /// serialize() call. 0.0 until the first measurement. The adaptation
  /// layer feeds this to its workload monitor so the policy frontier is
  /// priced with *this machine's* trip, not the paper's constant.
  static double measured_roundtrip_cycles() noexcept;

 private:
  SerializerRegistry();
  SerializerRegistry(const SerializerRegistry&) = delete;
  SerializerRegistry& operator=(const SerializerRegistry&) = delete;

  static void handler(int);

  // Bump req_seq and post a signal unless one is already in flight.
  // Returns the caller's request number, or 0 if the primary is gone.
  static std::uint64_t post_request(Slot& slot);
  // Spin until ack_seq covers `my_req`, re-posting on a stalled wait.
  static void await_ack(Slot& slot, std::uint64_t my_req);

  // Record one measured round trip into the process-wide EWMA. Racy
  // read-modify-store on purpose: a dropped sample under contention only
  // slows convergence of an estimate that is advisory to begin with.
  static void record_roundtrip(std::uint64_t cycles) noexcept;

  CacheAligned<Slot> slots_[kMaxPrimaries];
  std::atomic<std::size_t> high_water_{0};
  static std::atomic<std::uint64_t> rtt_ewma_cycles_;
  static std::atomic<std::uint64_t> rtt_samples_;
};

/// RAII registration of the calling thread as an l-mfence primary.
class PrimaryRegistration {
 public:
  PrimaryRegistration()
      : handle_(SerializerRegistry::instance().register_self()) {}
  ~PrimaryRegistration() {
    SerializerRegistry::instance().unregister_self(handle_);
  }
  PrimaryRegistration(const PrimaryRegistration&) = delete;
  PrimaryRegistration& operator=(const PrimaryRegistration&) = delete;

  const SerializerRegistry::Handle& handle() const noexcept { return handle_; }

 private:
  SerializerRegistry::Handle handle_;
};

}  // namespace lbmf
