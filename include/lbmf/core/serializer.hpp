#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include <pthread.h>

#include "lbmf/util/cacheline.hpp"

namespace lbmf {

/// Signal-based remote serialization — the paper's software prototype of
/// l-mfence (Sec. 5, "Software Prototype of l-mfence").
///
/// A thread that wants to act as a *primary* (the thread whose fences we
/// optimize away) registers itself and receives a slot. A *secondary* thread
/// that is about to read a location guarded by the primary's l-mfence calls
/// serialize(slot): it posts a POSIX signal to the primary and spins until
/// the primary's handler acknowledges. Delivering the signal forces the
/// primary's core through a kernel entry/exit, which drains its store buffer
/// — exactly the serialization a remote mfence would provide — and the
/// acknowledgment tells the secondary the drain has happened, so its
/// subsequent load observes every store the primary had committed.
///
/// The handler is async-signal-safe: it touches only lock-free std::atomic
/// fields of the registered slot.
class SerializerRegistry {
 public:
  /// One registered primary thread. Fields are cache-line separated so the
  /// secondary's request traffic does not false-share with the ack word the
  /// primary writes.
  struct Slot {
    std::atomic<std::uint64_t> req_seq{0};   // bumped by secondaries
    std::atomic<std::uint64_t> ack_seq{0};   // published by the handler
    std::atomic<bool> live{false};           // slot holds a registered thread
    pthread_t thread{};
    std::atomic<std::uint64_t> signals_received{0};
  };

  /// Opaque handle a secondary uses to target a primary.
  class Handle {
   public:
    Handle() = default;
    bool valid() const noexcept { return slot_ != nullptr; }

   private:
    friend class SerializerRegistry;
    explicit Handle(Slot* s) noexcept : slot_(s) {}
    Slot* slot_ = nullptr;
  };

  static constexpr std::size_t kMaxPrimaries = 256;

  /// Process-wide registry (installs the signal handler on first use).
  static SerializerRegistry& instance();

  /// Register the calling thread as a primary. Must be paired with
  /// unregister_self() on the same thread before it exits. Returns an
  /// invalid handle if the registry is full.
  Handle register_self();

  /// Remove the calling thread's registration.
  void unregister_self(Handle& h);

  /// Force the primary identified by `h` to serialize its instruction
  /// stream, and return only after it has done so. Safe to call from any
  /// thread except the primary itself; calling it on a dead/unregistered
  /// handle is a no-op. Returns false if the slot was not live.
  bool serialize(const Handle& h);

  /// Number of signals a primary's handler has run (for event accounting).
  static std::uint64_t signals_received(const Handle& h) noexcept {
    return h.slot_ ? h.slot_->signals_received.load(std::memory_order_relaxed)
                   : 0;
  }

  /// The signal number used for serialization requests (SIGURG by default:
  /// rarely used by applications and ignored by default, so a stray late
  /// delivery after unregistration cannot kill the process).
  static int signal_number() noexcept;

 private:
  SerializerRegistry();
  SerializerRegistry(const SerializerRegistry&) = delete;
  SerializerRegistry& operator=(const SerializerRegistry&) = delete;

  static void handler(int);

  CacheAligned<Slot> slots_[kMaxPrimaries];
  std::atomic<std::size_t> high_water_{0};
};

/// RAII registration of the calling thread as an l-mfence primary.
class PrimaryRegistration {
 public:
  PrimaryRegistration()
      : handle_(SerializerRegistry::instance().register_self()) {}
  ~PrimaryRegistration() {
    SerializerRegistry::instance().unregister_self(handle_);
  }
  PrimaryRegistration(const PrimaryRegistration&) = delete;
  PrimaryRegistration& operator=(const PrimaryRegistration&) = delete;

  const SerializerRegistry::Handle& handle() const noexcept { return handle_; }

 private:
  SerializerRegistry::Handle handle_;
};

}  // namespace lbmf
