#pragma once

#include <atomic>

#include "lbmf/core/policies.hpp"
#include "lbmf/util/cacheline.hpp"
#include "lbmf/util/check.hpp"

namespace lbmf {

/// High-level, per-location form of the paper's l-mfence(l, v).
///
/// A GuardedLocation has exactly one *primary* thread (the single writer the
/// paper's usage rules require, Sec. 3) and any number of *secondary*
/// readers. The primary calls lmfence_store(v): the store is ordered against
/// the primary's subsequent loads *on demand* — the primary itself pays only
/// a compiler fence. A secondary calls remote_read(): it first forces the
/// primary to serialize (the location-based trigger) and then loads, so it
/// is guaranteed to observe every store the primary issued before its most
/// recent lmfence_store.
///
/// With P = SymmetricFence the same object degrades to the classic
/// program-based discipline (primary pays mfence, remote_read is a plain
/// load), which is how the benchmarks hold everything but the fence constant.
template <typename T, FencePolicy P = AsymmetricSignalFence>
class GuardedLocation {
 public:
  using Policy = P;

  explicit GuardedLocation(T initial = T{}) : value_(initial) {}

  GuardedLocation(const GuardedLocation&) = delete;
  GuardedLocation& operator=(const GuardedLocation&) = delete;

  /// Register the calling thread as this location's primary. Must precede
  /// any lmfence_store and outlive all concurrent remote_read calls.
  void bind_primary() {
    LBMF_CHECK_MSG(!bound_.load(std::memory_order_relaxed),
                   "GuardedLocation already has a primary");
    handle_ = P::register_primary();
    bound_.store(true, std::memory_order_release);
  }

  /// Drop the primary registration (call on the primary thread, after all
  /// secondaries have stopped issuing remote_read).
  void unbind_primary() {
    if (bound_.exchange(false, std::memory_order_acq_rel)) {
      P::unregister_primary(handle_);
    }
  }

  /// The l-mfence itself: store v to the guarded location with on-demand
  /// StoreLoad ordering against the primary's later loads.
  void lmfence_store(T v) noexcept {
    compiler_fence();
    value_->store(v, std::memory_order_relaxed);
    P::primary_fence();  // compiler-only for asymmetric policies
  }

  /// Plain store by the primary that needs no ordering (e.g. clearing a
  /// Dekker flag on critical-section exit).
  void plain_store(T v) noexcept { value_->store(v, std::memory_order_release); }

  /// Primary-side read of its own location (store-buffer forwarded).
  T local_read() const noexcept {
    return value_->load(std::memory_order_relaxed);
  }

  /// Secondary-side read: remotely serialize the primary, then load. After
  /// this returns, every store the primary committed before its latest
  /// lmfence_store is visible to the caller.
  T remote_read() const {
    if (bound_.load(std::memory_order_acquire)) {
      P::serialize(handle_);
    }
    return value_->load(std::memory_order_acquire);
  }

  /// Secondary-side read *without* the serialization step — for polling
  /// loops that only need an eventually-fresh value.
  T weak_read() const noexcept {
    return value_->load(std::memory_order_acquire);
  }

 private:
  CacheAligned<std::atomic<T>> value_;
  typename P::Handle handle_{};
  std::atomic<bool> bound_{false};
};

}  // namespace lbmf
