#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "lbmf/core/policies.hpp"
#include "lbmf/util/cacheline.hpp"
#include "lbmf/util/check.hpp"
#include "lbmf/util/spin.hpp"

namespace lbmf {

/// A user-space-RCU-style epoch domain with l-mfence readers — the pattern
/// the Linux membarrier(2) syscall (the shipped descendant of this paper's
/// mechanism) exists to serve.
///
/// Readers are the primaries: entering a read-side critical section is one
/// plain store plus a compiler fence — the Dekker announce. A writer's
/// synchronize() is the secondary: it advances the global epoch, fences,
/// remotely serializes every registered reader once (exposing any
/// in-flight announce parked in a store buffer), and waits until every
/// reader is either outside a critical section or has entered one that
/// began after the epoch advanced. After synchronize() returns, no reader
/// can still hold a reference obtained before it — the grace-period
/// guarantee deferred reclamation needs.
template <FencePolicy P>
class EpochDomain {
 private:
  struct Slot;  // MutatorToken-style early declaration

 public:
  static constexpr std::size_t kMaxReaders = 64;

  EpochDomain() = default;
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  ~EpochDomain() {
    // Run any still-deferred reclamations: no readers can remain
    // registered at this point (tokens must not outlive the domain).
    for (auto& [ptr, deleter] : retired_) deleter(ptr);
  }

  /// RAII read-side critical section (see ReaderToken::read_lock()).
  class ReadGuard {
   public:
    ReadGuard(ReadGuard&& o) noexcept : slot_(o.slot_) { o.slot_ = nullptr; }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ReadGuard& operator=(ReadGuard&&) = delete;
    ~ReadGuard() {
      if (slot_ != nullptr) {
        slot_->state.store(0, std::memory_order_release);
      }
    }

   private:
    friend class EpochDomain;
    explicit ReadGuard(Slot* s) noexcept : slot_(s) {}
    Slot* slot_;
  };

  /// Per-thread reader registration (RAII; same contract as the other
  /// primaries in this library: create/destroy on the reader's own thread,
  /// never outliving the domain).
  class ReaderToken {
   public:
    ReaderToken(ReaderToken&& o) noexcept : d_(o.d_), slot_(o.slot_) {
      o.d_ = nullptr;
    }
    ReaderToken(const ReaderToken&) = delete;
    ReaderToken& operator=(const ReaderToken&) = delete;
    ReaderToken& operator=(ReaderToken&&) = delete;
    ~ReaderToken() {
      if (d_ != nullptr) d_->unregister_reader(*this);
    }

    /// Enter a read-side critical section. Fence-free under the
    /// asymmetric policies; non-reentrant (one guard at a time per token).
    ReadGuard read_lock() {
      Slot& s = *d_->slots_[slot_];
      LBMF_CHECK_MSG(s.state.load(std::memory_order_relaxed) == 0,
                     "EpochDomain read_lock is not reentrant");
      // Announce: active in the current epoch. The epoch value may be
      // stale by the time the store lands — that is fine: a stale epoch
      // only makes synchronize() wait for us, never miss us.
      compiler_fence();
      s.state.store(d_->epoch_->load(std::memory_order_relaxed) | 1u,
                    std::memory_order_relaxed);
      P::primary_fence();
      return ReadGuard(&s);
    }

   private:
    friend class EpochDomain;
    ReaderToken(EpochDomain* d, std::size_t slot) : d_(d), slot_(slot) {}

    EpochDomain* d_;
    std::size_t slot_;
  };

  ReaderToken register_reader() {
    for (std::size_t i = 0; i < kMaxReaders; ++i) {
      Slot& s = *slots_[i];
      bool expected = false;
      if (!s.used.load(std::memory_order_relaxed) &&
          s.used.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
        s.handle = P::register_primary();
        s.state.store(0, std::memory_order_relaxed);
        s.live.store(true, std::memory_order_release);
        std::size_t hw = high_water_.load(std::memory_order_relaxed);
        while (hw < i + 1 && !high_water_.compare_exchange_weak(
                                 hw, i + 1, std::memory_order_acq_rel)) {
        }
        return ReaderToken(this, i);
      }
    }
    LBMF_CHECK_MSG(false, "EpochDomain reader slots exhausted");
    return ReaderToken(this, 0);  // unreachable
  }

  /// Wait for a full grace period: every read-side critical section that
  /// existed when synchronize() was called has ended by the time it
  /// returns. Also runs all reclamations retired before the call.
  void synchronize() {
    std::lock_guard<std::mutex> g(writer_gate_);
    std::vector<std::pair<void*, void (*)(void*)>> to_free;
    to_free.swap(retired_);

    // Advance the epoch (low bit reserved for the reader-active flag).
    const std::uint64_t new_epoch =
        epoch_->fetch_add(2, std::memory_order_relaxed) + 2;
    P::secondary_fence();

    // One batched serialize_many wave exposes any announce still parked in
    // a reader's store buffer; afterwards, plain loads suffice. Batching
    // makes the grace period pay the slowest reader's round trip once
    // instead of summing round trips over all readers.
    const std::size_t hw = high_water_.load(std::memory_order_acquire);
    std::array<typename P::Handle, kMaxReaders> wave;
    std::array<Slot*, kMaxReaders> pending;
    std::size_t n = 0;
    for (std::size_t i = 0; i < hw; ++i) {
      Slot& s = *slots_[i];
      if (!s.live.load(std::memory_order_acquire)) continue;
      wave[n] = s.handle;
      pending[n] = &s;
      ++n;
    }
    P::serialize_many(std::span<const typename P::Handle>(wave.data(), n));
    for (std::size_t i = 0; i < n; ++i) {
      Slot& s = *pending[i];
      SpinWait w;
      for (;;) {
        const std::uint64_t st = s.state.load(std::memory_order_acquire);
        if ((st & 1u) == 0) break;            // not in a critical section
        if ((st | 1u) >= (new_epoch | 1u)) break;  // entered after advance
        w.wait();
      }
    }
    ++grace_periods_;

    for (auto& [ptr, deleter] : to_free) deleter(ptr);
  }

  /// Defer reclamation of `ptr` until after the next grace period (the
  /// next synchronize() call runs the deleter).
  void retire(void* ptr, void (*deleter)(void*)) {
    std::lock_guard<std::mutex> g(writer_gate_);
    retired_.emplace_back(ptr, deleter);
  }

  /// Typed convenience: retire a heap object for deferred deletion.
  template <typename T>
  void retire(T* ptr) {
    retire(static_cast<void*>(ptr),
           [](void* p) { delete static_cast<T*>(p); });
  }

  std::uint64_t grace_periods() const noexcept { return grace_periods_; }
  std::size_t retired_pending() {
    std::lock_guard<std::mutex> g(writer_gate_);
    return retired_.size();
  }

 private:
  struct Slot {
    /// 0 = quiescent; otherwise (epoch | 1) of the in-progress section.
    std::atomic<std::uint64_t> state{0};
    std::atomic<bool> used{false};
    std::atomic<bool> live{false};
    typename P::Handle handle{};
  };

  void unregister_reader(ReaderToken& t) {
    Slot& s = *slots_[t.slot_];
    std::lock_guard<std::mutex> g(writer_gate_);
    s.live.store(false, std::memory_order_release);
    P::unregister_primary(s.handle);
    s.used.store(false, std::memory_order_release);
  }

  CacheAligned<Slot> slots_[kMaxReaders];
  CacheAligned<std::atomic<std::uint64_t>> epoch_{2};
  std::mutex writer_gate_;
  std::vector<std::pair<void*, void (*)(void*)>> retired_;
  std::uint64_t grace_periods_ = 0;  // gate-protected
  std::atomic<std::size_t> high_water_{0};
};

}  // namespace lbmf
