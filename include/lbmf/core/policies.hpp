#pragma once

#include <concepts>
#include <cstddef>
#include <span>

#include "lbmf/core/fence.hpp"
#include "lbmf/core/membarrier.hpp"
#include "lbmf/core/serializer.hpp"
#include "lbmf/util/check.hpp"

namespace lbmf {

/// A FencePolicy packages one answer to the question the paper poses: who
/// pays for the StoreLoad ordering in a Dekker-duality protocol?
///
///   * primary_fence()   — executed by the primary between its intent store
///                         and its read of the peer flag. The whole point of
///                         l-mfence is making this a compiler fence only.
///   * secondary_fence() — executed by the secondary in the same position;
///                         always a real fence (Sec. 4: the secondary uses
///                         mfence so the primary need not wait for it).
///   * serialize(h)      — executed by the secondary after secondary_fence()
///                         and before reading the primary's flag: remotely
///                         forces the primary's prior stores to become
///                         visible. A no-op for symmetric policies, where
///                         primary_fence() already did the work locally.
///   * serialize_many(hs)— fan-out form: serialize a whole set of primaries
///                         as one overlapped wave (post all requests, then
///                         collect all acks), so a writer facing N primaries
///                         pays the slowest round trip instead of the sum.
///                         Returns the number of handles serialized.
///   * secondary_fence(h)— handle-aware variant: a policy whose current
///                         serialization backend can invert roles (drain the
///                         secondaries from the primary side) may weaken the
///                         secondary's fence to compiler-only — the paper's
///                         double-l-mfence regime. Static policies forward
///                         to the zero-arg form.
///   * serialize_peers(h)— primary-side drain of every peer before the
///                         primary's conflict-deciding read: the
///                         role-inversion primitive double-l-mfence rests
///                         on. Returns whether peers were actually drained;
///                         false for policies/backends that cannot invert
///                         (the primary's local fence already ordered its
///                         own stores, so false is sound — just not double).
template <typename P>
concept FencePolicy =
    requires(typename P::Handle h, std::span<const typename P::Handle> hs) {
      { P::register_primary() } -> std::same_as<typename P::Handle>;
      { P::unregister_primary(h) };
      { P::primary_fence() };
      { P::secondary_fence() };
      { P::secondary_fence(h) };
      { P::serialize(h) } -> std::convertible_to<bool>;
      { P::serialize_peers(h) } -> std::convertible_to<bool>;
      { P::serialize_many(hs) } -> std::convertible_to<std::size_t>;
      { P::name() } -> std::convertible_to<const char*>;
      { P::kAsymmetric } -> std::convertible_to<bool>;
    };

/// Sequential fallback for serialize_many: N independent round trips. The
/// correct (if slow) default for any policy without a cheaper wave.
template <typename P>
inline std::size_t serialize_many_sequential(
    std::span<const typename P::Handle> hs) {
  std::size_t done = 0;
  for (const auto& h : hs) {
    if (P::serialize(h)) ++done;
  }
  return done;
}

/// Program-based fences on both sides — the baseline the paper compares
/// against (plain Dekker / Cilk-5 / SRW lock).
struct SymmetricFence {
  struct Handle {};
  static constexpr bool kAsymmetric = false;
  static Handle register_primary() noexcept { return {}; }
  static void unregister_primary(Handle&) noexcept {}
  static void primary_fence() noexcept { store_load_fence(); }
  static void secondary_fence() noexcept { store_load_fence(); }
  static void secondary_fence(const Handle&) noexcept { secondary_fence(); }
  static bool serialize(const Handle&) noexcept { return true; }
  static bool serialize_peers(const Handle&) noexcept { return false; }
  static std::size_t serialize_many(std::span<const Handle> hs) noexcept {
    return hs.size();  // primaries fence locally: nothing remote to do
  }
  static constexpr const char* name() noexcept { return "symmetric-mfence"; }
};

/// The paper's software prototype: primary pays a compiler fence; secondary
/// signals the primary and waits for the handler's acknowledgment.
struct AsymmetricSignalFence {
  using Handle = SerializerRegistry::Handle;
  static constexpr bool kAsymmetric = true;
  static Handle register_primary() {
    return SerializerRegistry::instance().register_self();
  }
  static void unregister_primary(Handle& h) {
    SerializerRegistry::instance().unregister_self(h);
  }
  static void primary_fence() noexcept { compiler_fence(); }
  static void secondary_fence() noexcept { store_load_fence(); }
  static void secondary_fence(const Handle&) noexcept { secondary_fence(); }
  static bool serialize(const Handle& h) {
    return SerializerRegistry::instance().serialize(h);
  }
  /// Signals target one registered primary; the primary cannot drain its
  /// peers, so this prototype never realizes double-l-mfence.
  static bool serialize_peers(const Handle&) noexcept { return false; }
  static std::size_t serialize_many(std::span<const Handle> hs) {
    return SerializerRegistry::instance().serialize_many(hs);
  }
  /// The pre-batching serialize: every call posts its own signal and
  /// spin-waits the covering ack (no coalescing, no parking). Same
  /// guarantee as serialize(); kept so sequential-baseline code paths and
  /// benchmarks (bench_arw/bench_roundtrip E15) measure the original cost.
  static bool serialize_baseline(const Handle& h) {
    return SerializerRegistry::instance().serialize_uncoalesced(h);
  }
  static constexpr const char* name() noexcept { return "asymmetric-signal"; }
};

/// Modern-kernel variant: one membarrier(2) syscall serializes every thread
/// of the process. No registration handshake beyond the kernel's, but the
/// handle carries the registration *outcome*: on kernels without EXPEDITED
/// support the policy degrades to symmetric fencing on both sides — loudly
/// (one stderr warning) and visibly (serialize() returns false, the handle
/// reports !asymmetric()), never by silently pretending the remote drain
/// happened.
struct AsymmetricMembarrierFence {
  struct Handle {
    bool expedited = false;  ///< kernel accepted EXPEDITED registration
    bool asymmetric() const noexcept { return expedited; }
  };
  static constexpr bool kAsymmetric = true;
  static Handle register_primary() noexcept {
    const bool ok = membarrier::available();  // probe + eager registration
    if (!ok) {
      static std::atomic<bool> warned{false};
      detail::warn_once(warned,
                        "membarrier(2) EXPEDITED unavailable; "
                        "asymmetric-membarrier degrades to symmetric fences");
    }
    return Handle{ok};
  }
  static void unregister_primary(Handle&) noexcept {}
  static void primary_fence() noexcept {
    // Without a working remote drain the secondary cannot serialize us, so
    // the light path is unsound: fall back to a local full fence.
    if (membarrier::available()) {
      compiler_fence();
    } else {
      store_load_fence();
    }
  }
  static void secondary_fence() noexcept { store_load_fence(); }
  static void secondary_fence(const Handle&) noexcept { secondary_fence(); }
  static bool serialize(const Handle& h) noexcept {
    if (!h.expedited) return false;  // primary fenced locally; nothing remote
    membarrier::barrier();
    return true;
  }
  /// The broadcast drains every thread of the process, so the primary can
  /// drain its peers exactly as cheaply as they drain it — this is the
  /// simplest backend that realizes the paper's double-l-mfence regime.
  static bool serialize_peers(const Handle& h) noexcept {
    if (!h.expedited) return false;
    membarrier::barrier();
    return true;
  }
  static std::size_t serialize_many(std::span<const Handle> hs) noexcept {
    // membarrier is a broadcast: one syscall serializes every thread of the
    // process, so a whole wave collapses into a single kernel round trip.
    std::size_t expedited = 0;
    for (const auto& h : hs) {
      if (h.expedited) ++expedited;
    }
    if (expedited > 0) membarrier::barrier();
    return expedited;
  }
  static constexpr const char* name() noexcept {
    return "asymmetric-membarrier";
  }
};

/// No hardware fence anywhere. UNSAFE under contention — exists only to
/// measure the no-fence upper bound the paper quotes ("4-7x slower with a
/// fence than without", Sec. 1) and as the negative control in simulator
/// tests.
struct UnsafeNoFence {
  struct Handle {};
  static constexpr bool kAsymmetric = false;
  static Handle register_primary() noexcept { return {}; }
  static void unregister_primary(Handle&) noexcept {}
  static void primary_fence() noexcept { compiler_fence(); }
  static void secondary_fence() noexcept { compiler_fence(); }
  static void secondary_fence(const Handle&) noexcept { secondary_fence(); }
  static bool serialize(const Handle&) noexcept { return true; }
  static bool serialize_peers(const Handle&) noexcept { return false; }
  static std::size_t serialize_many(std::span<const Handle> hs) noexcept {
    return hs.size();
  }
  static constexpr const char* name() noexcept { return "unsafe-no-fence"; }
};

static_assert(FencePolicy<SymmetricFence>);
static_assert(FencePolicy<AsymmetricSignalFence>);
static_assert(FencePolicy<AsymmetricMembarrierFence>);
static_assert(FencePolicy<UnsafeNoFence>);

/// RAII registration of the calling thread as a primary under policy P.
template <FencePolicy P>
class ScopedPrimary {
 public:
  ScopedPrimary() : handle_(P::register_primary()) {}
  ~ScopedPrimary() { P::unregister_primary(handle_); }
  ScopedPrimary(const ScopedPrimary&) = delete;
  ScopedPrimary& operator=(const ScopedPrimary&) = delete;

  typename P::Handle& handle() noexcept { return handle_; }
  const typename P::Handle& handle() const noexcept { return handle_; }

 private:
  typename P::Handle handle_;
};

}  // namespace lbmf
