#pragma once

#include <atomic>

namespace lbmf {

/// Compiler-only fence: forbids the *compiler* from moving memory accesses
/// across this point but emits no instruction. This is the entire cost the
/// primary thread pays on the fast path of a location-based memory fence
/// (Sec. 3 of the paper: "an implicit compiler fence should be inserted").
inline void compiler_fence() noexcept {
  std::atomic_signal_fence(std::memory_order_seq_cst);
}

/// Full hardware memory fence (mfence on x86-64): stalls until the store
/// buffer drains, making all prior stores globally visible before any later
/// load executes. This is the program-based fence the paper sets out to
/// avoid on the primary thread's path.
inline void full_fence() noexcept {
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

/// The specific ordering the Dekker duality needs: no StoreLoad reordering
/// between the intent store and the peer-flag load. On TSO this is the only
/// reordering that exists, so this is equivalent to full_fence; the separate
/// name documents *why* a fence sits at a call site.
inline void store_load_fence() noexcept { full_fence(); }

}  // namespace lbmf
