#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace lbmf::model {

/// Per-event costs in CPU cycles. Defaults are the constants the paper
/// measures on its 16-core 2 GHz Opteron (Sec. 5): a signal round trip
/// ≈ 10,000 cycles (plus the primary stalling for the handler, ≈ half a
/// round trip), an LE/ST round trip ≈ 150 cycles with negligible primary
/// impact, and an mfence in the ~100-cycle class.
struct CostTable {
  double mfence_cycles = 100.0;
  double compiler_fence_cycles = 0.0;
  double lest_victim_cycles = 3.0;  // SetLink + LE(hit) + branch
  double signal_roundtrip_cycles = 10'000.0;
  double signal_primary_penalty_cycles = 5'000.0;  // 4 kernel crossings
  double lest_roundtrip_cycles = 150.0;
  double lest_primary_penalty_cycles = 10.0;  // store-buffer flush only
  double symmetric_steal_cycles = 200.0;      // cache misses on the deque
  /// ARW+ ack check: the writer polls a shared word instead of signaling
  /// (one coherence miss per reader).
  double ack_roundtrip_cycles = 100.0;
};

/// How the StoreLoad ordering of the Dekker duality is implemented.
enum class FenceImpl {
  kMfence,     // program-based fence on the primary (Cilk-5 / SRW)
  kSignal,     // software l-mfence prototype (ACilk-5 / ARW)
  kSignalAck,  // software prototype + waiting heuristic (ARW+)
  kLest,       // the proposed LE/ST hardware
  kNone,       // no fence (unsafe; the serial upper bound)
};

const char* to_string(FenceImpl f) noexcept;

/// Inverse of to_string(FenceImpl). Returns nullopt for unknown spellings.
std::optional<FenceImpl> fence_impl_from_string(std::string_view s) noexcept;

/// Cycles the primary pays per announce (per pop / per read-lock).
double victim_fence_cycles(FenceImpl f, const CostTable& c) noexcept;

/// Cycles the secondary pays per remote serialization (per steal attempt /
/// per writer-vs-reader round).
double remote_serialize_cycles(FenceImpl f, const CostTable& c) noexcept;

/// Cycles the *primary* loses per remote serialization targeting it.
double primary_penalty_cycles(FenceImpl f, const CostTable& c) noexcept;

// ---------------------------------------------------------------------------
// Fig. 5 model: work-stealing runtime
// ---------------------------------------------------------------------------

/// Event counts of one benchmark run — the policy-independent shape the
/// paper's Sec. 5 analysis reasons with. Collect them from
/// ws::SchedulerStats and a no-fence serial timing.
struct WsCounts {
  std::uint64_t spawns = 0;          // victim pops == fences on victim path
  std::uint64_t steal_attempts = 0;  // remote serializations issued
  std::uint64_t steals_success = 0;
  double work_cycles = 0;            // pure work (no-fence serial run)
};

/// Predicted execution cycles with `workers` workers under fence
/// implementation `f`: work and victim-side fence costs parallelize; each
/// steal attempt costs the thief a remote round trip and the victim its
/// penalty. This is exactly the accounting the paper uses to explain which
/// benchmarks win and lose (work per fence avoided vs signals per steal).
double ws_predicted_cycles(const WsCounts& w, std::size_t workers,
                           FenceImpl f, const CostTable& c) noexcept;

/// Convenience: predicted relative execution time of an asymmetric runtime
/// (impl `f`) against the symmetric mfence baseline, same counts.
double ws_relative_time(const WsCounts& w, std::size_t workers, FenceImpl f,
                        const CostTable& c) noexcept;

// ---------------------------------------------------------------------------
// Fig. 6 model: biased readers-writer lock
// ---------------------------------------------------------------------------

/// Microbenchmark parameters (Sec. 5, "Evaluation Using ARW Lock"): P
/// threads, read:write ratio N:1 (each thread writes once per N/P reads).
struct RwParams {
  std::size_t threads = 1;
  double read_write_ratio = 1000.0;      // N
  /// Cost of one read-lock/read/unlock pass beyond the fence: lock
  /// bookkeeping plus touching the 4-element array. Calibrated so the
  /// single-thread normalized throughput lands in the paper's ~1.2-1.7
  /// band rather than at the raw fence ratio.
  double read_work_cycles = 150.0;
  double write_work_cycles = 200.0;
};

/// Predicted read throughput (reads per cycle, absolute) under `f`.
/// Per write period each thread performs N/P reads (each costing work +
/// victim fence) and one write whose exclusion round costs one remote
/// serialization + wait per registered reader, serialized at the writer.
double rw_read_throughput(const RwParams& p, FenceImpl f,
                          const CostTable& c) noexcept;

/// Predicted Fig. 6 data point: throughput under `f` normalized to the SRW
/// (kMfence) baseline. Values above 1 mean the asymmetric lock wins.
double rw_relative_throughput(const RwParams& p, FenceImpl f,
                              const CostTable& c) noexcept;

}  // namespace lbmf::model
