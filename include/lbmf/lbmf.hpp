#pragma once

/// Umbrella header: the whole lbmf public surface. Prefer the individual
/// headers in translation units that care about compile time.

#include "lbmf/core/epoch.hpp"
#include "lbmf/core/fence.hpp"
#include "lbmf/core/lmfence.hpp"
#include "lbmf/core/membarrier.hpp"
#include "lbmf/core/policies.hpp"
#include "lbmf/core/safepoint.hpp"
#include "lbmf/core/serializer.hpp"
#include "lbmf/dekker/asymmetric_mutex.hpp"
#include "lbmf/dekker/biased_lock.hpp"
#include "lbmf/dekker/dekker.hpp"
#include "lbmf/dekker/peterson.hpp"
#include "lbmf/flowtable/flow_table.hpp"
#include "lbmf/flowtable/pipeline.hpp"
#include "lbmf/model/cost_model.hpp"
#include "lbmf/rwlock/rwlock.hpp"
#include "lbmf/sim/assembler.hpp"
#include "lbmf/sim/explorer.hpp"
#include "lbmf/sim/litmus.hpp"
#include "lbmf/sim/machine.hpp"
#include "lbmf/sim/trace.hpp"
#include "lbmf/ws/algorithms.hpp"
#include "lbmf/ws/chase_lev.hpp"
#include "lbmf/ws/scheduler.hpp"
