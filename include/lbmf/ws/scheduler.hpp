#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "lbmf/adapt/adaptive_fence.hpp"
#include "lbmf/adapt/selector.hpp"
#include "lbmf/core/policies.hpp"
#include "lbmf/util/check.hpp"
#include "lbmf/util/rng.hpp"
#include "lbmf/util/spin.hpp"
#include "lbmf/ws/deque.hpp"
#include "lbmf/ws/task.hpp"

namespace lbmf::ws {

/// Aggregated runtime statistics across all workers — the event counts the
/// paper's Sec. 5 analysis is built on (fences on the victim path, signals
/// sent per steal, successful-steal ratio).
struct SchedulerStats {
  std::uint64_t spawns = 0;
  std::uint64_t pops_fast = 0;
  std::uint64_t pops_conflict = 0;
  std::uint64_t pops_empty = 0;
  std::uint64_t victim_fences = 0;
  std::uint64_t victim_serializations = 0;  // peer drains (double-l-mfence)
  std::uint64_t steal_attempts = 0;   // thief_fences
  std::uint64_t steals_success = 0;
  std::uint64_t serializations = 0;
  /// Adaptive policies only: total *realized* quiescent-point mode switches
  /// across the pool (0 for the static policies). A switch counts only when
  /// the regime actually in force changed — a booked request the backend
  /// could not realize (e.g. double-l-mfence on a non-inverting backend)
  /// shows up in policy_switches_booked but not here.
  std::uint64_t policy_switches = 0;
  /// Adaptive policies only: switches as *booked* by the controller before
  /// capability clamping. booked - realized > 0 means some requests were
  /// degraded (the pre-fix counter overcounted by exactly that gap).
  std::uint64_t policy_switches_booked = 0;

  double steal_success_ratio() const noexcept {
    return steal_attempts == 0
               ? 0.0
               : static_cast<double>(steals_success) /
                     static_cast<double>(steal_attempts);
  }
};

/// Configuration for Scheduler::enable_adaptation (adaptive policies only).
struct AdaptationOptions {
  /// Crossover frontier consulted per worker; defaults to the frontier
  /// distilled from the shipped E17 sweep.
  adapt::PolicyTable table = adapt::PolicyTable::builtin_default();
  adapt::SelectorConfig selector;
  /// Scheduling-loop iterations between monitor samples. Each sample is one
  /// selector window; the loop boundary doubles as the quiescent point where
  /// a decided switch is adopted.
  std::uint64_t sample_every = 1024;
  /// Serialization backend every worker re-binds to at its first quiescent
  /// point (policies with a request_backend hook only). The selector's
  /// table lookups use this backend's plane, and its roundtrip_cycles()
  /// prices the frontier — a role-inverting backend is what lets workers
  /// genuinely enter the double-l-mfence cell.
  backend::BackendId backend = backend::BackendId::kSignal;
};

/// A child-stealing work-stealing scheduler in the style of Cilk-5's
/// runtime, parameterized on the fence policy used by the THE deque
/// protocol:
///
///   * Scheduler<SymmetricFence>        — the "Cilk-5" baseline (victim pays
///                                        an mfence on every pop)
///   * Scheduler<AsymmetricSignalFence> — the paper's "ACilk-5" (victim pays
///                                        a compiler fence; thieves signal)
///
/// Usage (mirrors `spawn`/`sync`):
///
///   Scheduler<AsymmetricSignalFence> sched(n);
///   sched.run([&] {
///     typename Scheduler<AsymmetricSignalFence>::TaskGroup tg;
///     auto t = tg.capture([&] { fib(n - 1, &a); });
///     tg.spawn(t);             // like `spawn fib(n-1)`
///     fib(n - 2, &b);          // continue working
///     tg.sync();               // like `sync`
///   });
///
/// The deque implementation is pluggable (default: the Cilk-5-style
/// TheDeque; ws/chase_lev.hpp provides the lock-free alternative with the
/// identical fence-policy slot):
///
///   Scheduler<AsymmetricSignalFence, ChaseLevDeque> cl_sched(n);
template <FencePolicy P, template <class> class DequeT = TheDeque>
class Scheduler {
 public:
  using Policy = P;

  explicit Scheduler(std::size_t num_workers);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Run `root` to completion (including everything it spawns) on the
  /// worker pool; blocks the calling thread. Not reentrant.
  void run(std::function<void()> root);

  std::size_t num_workers() const noexcept { return workers_.size(); }

  /// Aggregate event counters; call while quiescent for exact numbers.
  SchedulerStats stats() const;
  void reset_stats();

  /// Turn on online policy selection (adaptive policies only): every worker
  /// starts sampling its own deque counters and the measured serialization
  /// round trip, consults the table, and re-binds its fence regime at its
  /// next scheduling-loop boundary once the selector's hysteresis confirms.
  /// Call once, before or during a run; workers notice at their next tick.
  void enable_adaptation(AdaptationOptions opts = {})
    requires adapt::AdaptiveFencePolicy<P>
  {
    LBMF_CHECK_MSG(!adapt_enabled_.load(std::memory_order_acquire),
                   "enable_adaptation may be called once");
    adapt_options_ = std::move(opts);
    if (adapt_options_.selector.backend.empty()) {
      adapt_options_.selector.backend =
          backend::to_string(adapt_options_.backend);
    }
    adapt_enabled_.store(true, std::memory_order_release);
  }

  // -------------------------------------------------------------------
  // Intra-task API
  // -------------------------------------------------------------------

  /// spawn/sync scope. Must live on the stack of a task body; every
  /// spawned task must be captured via capture() (also stack-allocated)
  /// and must not outlive the group.
  class TaskGroup : public TaskGroupBase {
   public:
    /// Wrap a callable in a stack-allocatable task bound to this group.
    template <typename F>
    ClosureTask<F> capture(F f) {
      return ClosureTask<F>(*this, std::move(f));
    }

    /// Make the task stealable: push it on the current worker's deque.
    /// Must be called from inside a scheduler task.
    void spawn(TaskBase& t) {
      Worker* w = tls_worker_;
      LBMF_CHECK_MSG(w != nullptr, "spawn outside a scheduler task");
      add_pending();
      w->deque.push(&t);
    }

    /// Wait until every task spawned on this group has completed, helping
    /// with other work (own deque first, then stealing) meanwhile.
    void sync() {
      Worker* w = tls_worker_;
      LBMF_CHECK_MSG(w != nullptr, "sync outside a scheduler task");
      w->scheduler->sync_help(*w, *this);
    }
  };

  /// The worker currently executing the calling thread's task, or nullptr
  /// off the pool.
  struct Worker;
  static Worker* current() noexcept { return tls_worker_; }

  struct Worker {
    Scheduler* scheduler = nullptr;
    std::size_t index = 0;
    DequeT<P> deque;
    Xoshiro256 rng{0};
    std::thread thread;
    /// This worker's primary registration (published before ready_, so
    /// stats() may read switch counts through it while the pool runs).
    typename P::Handle handle;
    /// Adaptation state; touched only by the owning worker.
    std::unique_ptr<adapt::PolicySelector> selector;
    std::uint64_t adapt_ticks = 0;
  };

 private:
  void worker_main(Worker& w);
  void sync_help(Worker& w, TaskGroupBase& group);
  TaskBase* try_steal(Worker& w);
  TaskBase* next_task(Worker& w);
  void maybe_adapt(Worker& w);

  static thread_local Worker* tls_worker_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> ready_{0};
  std::atomic<std::size_t> quiesced_{0};

  AdaptationOptions adapt_options_;
  std::atomic<bool> adapt_enabled_{false};

  // Root-task injection (callers are not workers).
  std::mutex inbox_mutex_;
  TaskBase* inbox_ = nullptr;
  std::atomic<bool> inbox_full_{false};
};

template <FencePolicy P, template <class> class DequeT>
thread_local typename Scheduler<P, DequeT>::Worker*
    Scheduler<P, DequeT>::tls_worker_ = nullptr;

// ---------------------------------------------------------------------------
// Implementation
// ---------------------------------------------------------------------------

template <FencePolicy P, template <class> class DequeT>
Scheduler<P, DequeT>::Scheduler(std::size_t num_workers) {
  LBMF_CHECK(num_workers >= 1 && num_workers <= 256);
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->scheduler = this;
    w->index = i;
    w->rng = Xoshiro256(0x9E3779B9u * (i + 1));
    workers_.push_back(std::move(w));
  }
  for (auto& w : workers_) {
    w->thread = std::thread([this, worker = w.get()] { worker_main(*worker); });
  }
  // Wait until every worker has registered itself as an l-mfence primary;
  // only then may thieves (or run()) target their deques.
  SpinWait sw;
  while (ready_.load(std::memory_order_acquire) < workers_.size()) sw.wait();
}

template <FencePolicy P, template <class> class DequeT>
Scheduler<P, DequeT>::~Scheduler() {
  stop_.store(true, std::memory_order_release);
  for (auto& w : workers_) w->thread.join();
}

template <FencePolicy P, template <class> class DequeT>
void Scheduler<P, DequeT>::worker_main(Worker& w) {
  tls_worker_ = &w;
  // Register as a primary for the asymmetric policies; the deque hands the
  // handle to thieves.
  w.handle = P::register_primary();
  w.deque.set_owner_handle(w.handle);
  ready_.fetch_add(1, std::memory_order_acq_rel);

  SpinWait idle;
  while (!stop_.load(std::memory_order_acquire)) {
    maybe_adapt(w);
    if (TaskBase* t = next_task(w)) {
      t->run();
      idle.reset();
    } else {
      idle.wait();
    }
  }

  // Two-phase shutdown: no worker may unregister while another might still
  // issue a serialize() against it, so everyone first stops stealing and
  // meets at a barrier.
  quiesced_.fetch_add(1, std::memory_order_acq_rel);
  SpinWait sw;
  while (quiesced_.load(std::memory_order_acquire) < workers_.size()) {
    sw.wait();
  }
  P::unregister_primary(w.handle);
  tls_worker_ = nullptr;
}

template <FencePolicy P, template <class> class DequeT>
void Scheduler<P, DequeT>::maybe_adapt(Worker& w) {
  if constexpr (adapt::AdaptiveFencePolicy<P>) {
    if (!adapt_enabled_.load(std::memory_order_acquire)) return;
    if (++w.adapt_ticks % adapt_options_.sample_every != 0) return;
    if (!w.selector) {
      w.selector = std::make_unique<adapt::PolicySelector>(
          adapt_options_.table, adapt_options_.selector);
    }
    // One selector window per sample: this worker's own pop-announce and
    // steal-attempt counters, plus the bound backend's round-trip price
    // (its measured EWMA, or — for sim-lest — the simulated LE/ST RTT).
    const DequeStats d = w.deque.stats();
    const double rtt =
        backend::serialization_backend(adapt_options_.backend)
            .roundtrip_cycles();
    const adapt::PolicyMode m =
        w.selector->update(d.victim_fences, d.thief_fences, rtt);
    if constexpr (requires { P::request_backend(w.handle,
                                                adapt_options_.backend); }) {
      P::request_backend(w.handle, adapt_options_.backend);
    }
    P::request_mode(w.handle, m);
    // The scheduling-loop boundary is a quiescent point: the previous pop
    // or steal has completed and the next announce has not been issued, so
    // adopting the switch here satisfies quiescent_point()'s contract.
    P::quiescent_point(w.handle);
  } else {
    (void)w;
  }
}

template <FencePolicy P, template <class> class DequeT>
TaskBase* Scheduler<P, DequeT>::next_task(Worker& w) {
  if (!w.deque.looks_empty()) {
    if (TaskBase* t = w.deque.pop()) return t;
  }
  if (inbox_full_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> g(inbox_mutex_);
    if (inbox_ != nullptr) {
      TaskBase* t = inbox_;
      inbox_ = nullptr;
      inbox_full_.store(false, std::memory_order_release);
      return t;
    }
  }
  return try_steal(w);
}

template <FencePolicy P, template <class> class DequeT>
TaskBase* Scheduler<P, DequeT>::try_steal(Worker& w) {
  const std::size_t n = workers_.size();
  if (n == 1) return nullptr;
  // One random probe per call (the caller loops); skip self and deques that
  // look empty to avoid useless serialization traffic.
  const std::size_t victim = w.rng.next_below(n);
  if (victim == w.index) return nullptr;
  DequeT<P>& d = workers_[victim]->deque;
  if (d.looks_empty()) return nullptr;
  return d.steal();
}

template <FencePolicy P, template <class> class DequeT>
void Scheduler<P, DequeT>::sync_help(Worker& w, TaskGroupBase& group) {
  SpinWait idle;
  while (!group.done()) {
    // Ticks here too: under a recursive workload a worker lives in nested
    // sync_help frames and would otherwise never reach a sampling point.
    maybe_adapt(w);
    if (!w.deque.looks_empty()) {
      if (TaskBase* t = w.deque.pop()) {
        t->run();
        idle.reset();
        continue;
      }
    }
    if (TaskBase* t = try_steal(w)) {
      t->run();
      idle.reset();
      continue;
    }
    idle.wait();
  }
}

template <FencePolicy P, template <class> class DequeT>
void Scheduler<P, DequeT>::run(std::function<void()> root) {
  TaskGroupBase root_group;
  auto body = [&root] { root(); };
  ClosureTask<decltype(body)> task(root_group, std::move(body));
  root_group.add_pending();
  {
    std::lock_guard<std::mutex> g(inbox_mutex_);
    LBMF_CHECK_MSG(inbox_ == nullptr, "Scheduler::run is not reentrant");
    inbox_ = &task;
    inbox_full_.store(true, std::memory_order_release);
  }
  SpinWait sw;
  while (!root_group.done()) sw.wait();
}

template <FencePolicy P, template <class> class DequeT>
SchedulerStats Scheduler<P, DequeT>::stats() const {
  SchedulerStats s;
  for (const auto& w : workers_) {
    const DequeStats d = w->deque.stats();
    s.spawns += d.pushes;
    s.pops_fast += d.pops_fast;
    s.pops_conflict += d.pops_conflict;
    s.pops_empty += d.pops_empty;
    s.victim_fences += d.victim_fences;
    s.victim_serializations += d.victim_serializations;
    s.steal_attempts += d.thief_fences;
    s.steals_success += d.steals_success;
    s.serializations += d.serializations;
    if constexpr (adapt::AdaptiveFencePolicy<P>) {
      s.policy_switches += P::switch_count(w->handle);
      if constexpr (requires { P::booked_switch_count(w->handle); }) {
        s.policy_switches_booked += P::booked_switch_count(w->handle);
      } else {
        s.policy_switches_booked += P::switch_count(w->handle);
      }
    }
  }
  return s;
}

template <FencePolicy P, template <class> class DequeT>
void Scheduler<P, DequeT>::reset_stats() {
  for (auto& w : workers_) w->deque.reset_stats();
}

}  // namespace lbmf::ws
