#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "lbmf/core/policies.hpp"
#include "lbmf/util/cacheline.hpp"
#include "lbmf/util/check.hpp"

namespace lbmf::ws {

class TaskBase;

/// Per-deque event counters; split per side (victim-written vs
/// thief-written) so no counter update races.
struct DequeStats {
  std::uint64_t pushes = 0;
  std::uint64_t pops_fast = 0;      // pop won without touching the lock
  std::uint64_t pops_conflict = 0;  // pop had to take the THE lock
  std::uint64_t pops_empty = 0;
  std::uint64_t victim_fences = 0;  // primary_fence() on the pop path
  std::uint64_t steals_success = 0;
  std::uint64_t steals_empty = 0;
  std::uint64_t thief_fences = 0;
  std::uint64_t serializations = 0;  // remote serialize() by thieves
};

/// A Cilk-5-style THE (Tail / Head / Exception-free variant) work-stealing
/// deque, parameterized on the fence policy. The victim owns the tail; the
/// thieves share the head behind a mutex (one thief at a time — the paper's
/// "secondaries first compete for the right to synchronize", Sec. 1).
///
/// The Dekker duality lives in pop vs steal:
///   pop   (victim, primary):  T = T-1;  <primary fence>;   read H
///   steal (thief,  secondary): H = H+1; <mfence+serialize>; read T
/// With an asymmetric policy the victim's fence is a compiler fence only —
/// exactly the l-mfence application the paper evaluates on Cilk-5.
template <FencePolicy P>
class TheDeque {
 public:
  static constexpr std::size_t kCapacity = std::size_t{1} << 15;

  TheDeque() : buffer_(kCapacity) {}
  TheDeque(const TheDeque&) = delete;
  TheDeque& operator=(const TheDeque&) = delete;

  /// The owning worker's serializer registration (set by the worker thread
  /// itself before any thief may target this deque).
  void set_owner_handle(const typename P::Handle& h) noexcept {
    owner_handle_ = h;
  }

  /// Victim-only: push a task at the tail. No fence needed — publication to
  /// thieves is via the release store of tail, and the Dekker race only
  /// exists on the pop side.
  void push(TaskBase* task) {
    const std::int64_t t = tail_->load(std::memory_order_relaxed);
    LBMF_CHECK_MSG(t - head_->load(std::memory_order_relaxed) <
                       static_cast<std::int64_t>(kCapacity),
                   "work-stealing deque overflow");
    buffer_[static_cast<std::size_t>(t) & (kCapacity - 1)] = task;
    tail_->store(t + 1, std::memory_order_release);
    ++vstats_->pushes;
  }

  /// Victim-only: pop from the tail. Returns nullptr when empty. This is
  /// the hot path whose fence the paper removes.
  TaskBase* pop() {
    // All tail/head stores are release and cross-side loads acquire: plain
    // MOVs on x86, so the *only* StoreLoad ordering in play is the policy
    // fence below — the variable the paper's experiment isolates.
    const std::int64_t t = tail_->load(std::memory_order_relaxed) - 1;
    tail_->store(t, std::memory_order_release);  // announce intent (L1 = 1)
    P::primary_fence();                          // l-mfence / mfence / ...
    ++vstats_->victim_fences;
    const std::int64_t h = head_->load(std::memory_order_acquire);
    if (h <= t) {
      // No conflict: the deque had at least one task beyond every thief.
      ++vstats_->pops_fast;
      return buffer_[static_cast<std::size_t>(t) & (kCapacity - 1)];
    }
    // Possible conflict with a thief racing for the last task: retreat and
    // resolve under the thief gate (the augmented-Dekker slow path).
    tail_->store(t + 1, std::memory_order_release);
    std::lock_guard<std::mutex> g(gate_);
    ++vstats_->pops_conflict;
    const std::int64_t h2 = head_->load(std::memory_order_acquire);
    if (h2 <= t) {
      tail_->store(t, std::memory_order_release);
      return buffer_[static_cast<std::size_t>(t) & (kCapacity - 1)];
    }
    ++vstats_->pops_empty;
    return nullptr;
  }

  /// Thief-only: steal from the head. Returns nullptr when empty.
  TaskBase* steal() {
    std::lock_guard<std::mutex> g(gate_);
    const std::int64_t h = head_->load(std::memory_order_relaxed);
    head_->store(h + 1, std::memory_order_release);  // announce (L2 = 1)
    P::secondary_fence();                            // always a real fence
    if (P::serialize(owner_handle_)) {
      ++tstats_->serializations;  // force the victim's tail store visible
    }
    ++tstats_->thief_fences;
    const std::int64_t t = tail_->load(std::memory_order_acquire);
    if (h + 1 > t) {
      head_->store(h, std::memory_order_release);  // retreat (L2 = 0)
      ++tstats_->steals_empty;
      return nullptr;
    }
    ++tstats_->steals_success;
    return buffer_[static_cast<std::size_t>(h) & (kCapacity - 1)];
  }

  bool looks_empty() const noexcept {
    return head_->load(std::memory_order_acquire) >=
           tail_->load(std::memory_order_acquire);
  }

  /// Merged snapshot; exact when victim and thieves are quiescent.
  DequeStats stats() const noexcept {
    DequeStats s = *vstats_;
    s.steals_success = tstats_->steals_success;
    s.steals_empty = tstats_->steals_empty;
    s.thief_fences = tstats_->thief_fences;
    s.serializations = tstats_->serializations;
    return s;
  }

  void reset_stats() noexcept {
    *vstats_ = DequeStats{};
    *tstats_ = DequeStats{};
  }

 private:
  CacheAligned<std::atomic<std::int64_t>> head_{0};
  CacheAligned<std::atomic<std::int64_t>> tail_{0};
  CacheAligned<DequeStats> vstats_;  // victim-written fields only
  CacheAligned<DequeStats> tstats_;  // thief-written fields (gate-serialized)
  std::mutex gate_;
  typename P::Handle owner_handle_{};
  std::vector<TaskBase*> buffer_;
};

}  // namespace lbmf::ws
