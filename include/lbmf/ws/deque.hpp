#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "lbmf/core/policies.hpp"
#include "lbmf/util/cacheline.hpp"
#include "lbmf/util/check.hpp"
#include "lbmf/util/counters.hpp"

namespace lbmf::ws {

class TaskBase;

/// Per-deque event counters — a plain value snapshot, as returned by
/// stats(). The live counters inside the deques are relaxed atomics
/// (VictimCounters / ThiefCounters below): splitting writers per side
/// stops counter *updates* from racing each other, but stats() reads both
/// sides from arbitrary threads while they run, so the storage itself must
/// be atomic or the snapshot is a data race (TSan flags it; the compiler
/// may tear or invent reads).
struct DequeStats {
  std::uint64_t pushes = 0;
  std::uint64_t pops_fast = 0;      // pop won without touching the lock
  std::uint64_t pops_conflict = 0;  // pop had to take the THE lock
  std::uint64_t pops_empty = 0;
  std::uint64_t victim_fences = 0;  // primary_fence() on the pop path
  std::uint64_t victim_serializations = 0;  // peer drains (double-l-mfence)
  std::uint64_t steals_success = 0;
  std::uint64_t steals_empty = 0;
  std::uint64_t thief_fences = 0;
  std::uint64_t serializations = 0;  // remote serialize() by thieves
};

/// Victim-written counters: single writer (the owning worker, so the
/// lock-prefix-free bump_relaxed applies — see util/counters.hpp), read by
/// stats() from any thread.
struct VictimCounters {
  std::atomic<std::uint64_t> pushes{0};
  std::atomic<std::uint64_t> pops_fast{0};
  std::atomic<std::uint64_t> pops_conflict{0};
  std::atomic<std::uint64_t> pops_empty{0};
  std::atomic<std::uint64_t> victim_fences{0};
  std::atomic<std::uint64_t> victim_serializations{0};

  void reset() noexcept {
    pushes.store(0, std::memory_order_relaxed);
    pops_fast.store(0, std::memory_order_relaxed);
    pops_conflict.store(0, std::memory_order_relaxed);
    pops_empty.store(0, std::memory_order_relaxed);
    victim_fences.store(0, std::memory_order_relaxed);
    victim_serializations.store(0, std::memory_order_relaxed);
  }
};

/// Thief-written counters. In TheDeque every update happens under the THE
/// gate (one writer at a time → bump_relaxed); Chase-Lev thieves race
/// without a gate and must use fetch_add on these same fields.
struct ThiefCounters {
  std::atomic<std::uint64_t> steals_success{0};
  std::atomic<std::uint64_t> steals_empty{0};
  std::atomic<std::uint64_t> thief_fences{0};
  std::atomic<std::uint64_t> serializations{0};

  void reset() noexcept {
    steals_success.store(0, std::memory_order_relaxed);
    steals_empty.store(0, std::memory_order_relaxed);
    thief_fences.store(0, std::memory_order_relaxed);
    serializations.store(0, std::memory_order_relaxed);
  }
};

/// A Cilk-5-style THE (Tail / Head / Exception-free variant) work-stealing
/// deque, parameterized on the fence policy. The victim owns the tail; the
/// thieves share the head behind a mutex (one thief at a time — the paper's
/// "secondaries first compete for the right to synchronize", Sec. 1).
///
/// The Dekker duality lives in pop vs steal:
///   pop   (victim, primary):  T = T-1;  <primary fence>;   read H
///   steal (thief,  secondary): H = H+1; <mfence+serialize>; read T
/// With an asymmetric policy the victim's fence is a compiler fence only —
/// exactly the l-mfence application the paper evaluates on Cilk-5.
template <FencePolicy P>
class TheDeque {
 public:
  static constexpr std::size_t kCapacity = std::size_t{1} << 15;

  TheDeque() : buffer_(kCapacity) {}
  TheDeque(const TheDeque&) = delete;
  TheDeque& operator=(const TheDeque&) = delete;

  /// The owning worker's serializer registration (set by the worker thread
  /// itself before any thief may target this deque).
  void set_owner_handle(const typename P::Handle& h) noexcept {
    owner_handle_ = h;
  }

  /// Victim-only: push a task at the tail. No fence needed — publication to
  /// thieves is via the release store of tail, and the Dekker race only
  /// exists on the pop side.
  void push(TaskBase* task) {
    const std::int64_t t = tail_->load(std::memory_order_relaxed);
    LBMF_CHECK_MSG(t - head_->load(std::memory_order_relaxed) <
                       static_cast<std::int64_t>(kCapacity),
                   "work-stealing deque overflow");
    buffer_[static_cast<std::size_t>(t) & (kCapacity - 1)].store(
        task, std::memory_order_relaxed);
    tail_->store(t + 1, std::memory_order_release);
    bump_relaxed(vstats_->pushes);
  }

  /// Victim-only: pop from the tail. Returns nullptr when empty. This is
  /// the hot path whose fence the paper removes.
  TaskBase* pop() {
    // All tail/head stores are release and cross-side loads acquire: plain
    // MOVs on x86, so the *only* StoreLoad ordering in play is the policy
    // fence below — the variable the paper's experiment isolates.
    const std::int64_t t = tail_->load(std::memory_order_relaxed) - 1;
    tail_->store(t, std::memory_order_release);  // announce intent (L1 = 1)
    P::primary_fence();                          // l-mfence / mfence / ...
    bump_relaxed(vstats_->victim_fences);
    // Double-l-mfence regime only (false otherwise): drain the thieves
    // before the conflict-deciding head read, mirroring the serialize()
    // thieves aim at us. The backend broadcast is also this side's
    // StoreLoad, completing the announce that primary_fence left light.
    if (P::serialize_peers(owner_handle_)) {
      bump_relaxed(vstats_->victim_serializations);
    }
    const std::int64_t h = head_->load(std::memory_order_acquire);
    if (h <= t) {
      // No conflict: the deque had at least one task beyond every thief.
      bump_relaxed(vstats_->pops_fast);
      return buffer_[static_cast<std::size_t>(t) & (kCapacity - 1)].load(
          std::memory_order_relaxed);
    }
    // Possible conflict with a thief racing for the last task: retreat and
    // resolve under the thief gate (the augmented-Dekker slow path).
    tail_->store(t + 1, std::memory_order_release);
    std::lock_guard<std::mutex> g(gate_);
    bump_relaxed(vstats_->pops_conflict);
    const std::int64_t h2 = head_->load(std::memory_order_acquire);
    if (h2 <= t) {
      tail_->store(t, std::memory_order_release);
      return buffer_[static_cast<std::size_t>(t) & (kCapacity - 1)].load(
          std::memory_order_relaxed);
    }
    bump_relaxed(vstats_->pops_empty);
    return nullptr;
  }

  /// Thief-only: steal from the head. Returns nullptr when empty.
  TaskBase* steal() {
    std::lock_guard<std::mutex> g(gate_);
    const std::int64_t h = head_->load(std::memory_order_relaxed);
    head_->store(h + 1, std::memory_order_release);  // announce (L2 = 1)
    P::secondary_fence(owner_handle_);  // real fence; light in double mode
    if (P::serialize(owner_handle_)) {
      // Force the victim's tail store visible.
      bump_relaxed(tstats_->serializations);
    }
    bump_relaxed(tstats_->thief_fences);
    const std::int64_t t = tail_->load(std::memory_order_acquire);
    if (h + 1 > t) {
      head_->store(h, std::memory_order_release);  // retreat (L2 = 0)
      bump_relaxed(tstats_->steals_empty);
      return nullptr;
    }
    bump_relaxed(tstats_->steals_success);
    return buffer_[static_cast<std::size_t>(h) & (kCapacity - 1)].load(
        std::memory_order_relaxed);
  }

  /// Advisory only: a racy occupancy hint for steal-target selection. The
  /// answer can be invalidated before this function even returns — a thief
  /// may drain the last task, the victim may push. Callers must treat a
  /// non-empty answer as "worth trying" and re-check the pop()/steal()
  /// result for nullptr (the scheduler does exactly this); never branch on
  /// it as a guarantee. pop_expecting_nonempty() is the debug tripwire for
  /// call sites that want that assumption checked.
  bool looks_empty() const noexcept {
    return head_->load(std::memory_order_acquire) >=
           tail_->load(std::memory_order_acquire);
  }

  /// pop() for callers acting on a looks_empty() == false observation as
  /// if it were authoritative. In debug builds the empty outcome aborts
  /// with a diagnosis instead of silently returning nullptr — catching the
  /// moment the advisory assumption is violated by a racing thief. Release
  /// builds: identical to pop().
  TaskBase* pop_expecting_nonempty() {
    TaskBase* t = pop();
#ifndef NDEBUG
    LBMF_CHECK_MSG(t != nullptr,
                   "looks_empty() is advisory, not authoritative: the deque "
                   "that looked non-empty was drained before pop()");
#endif
    return t;
  }

  /// Merged snapshot; exact when victim and thieves are quiescent, and a
  /// well-defined (relaxed, per-field-consistent) approximation while they
  /// run.
  DequeStats stats() const noexcept {
    DequeStats s;
    s.pushes = vstats_->pushes.load(std::memory_order_relaxed);
    s.pops_fast = vstats_->pops_fast.load(std::memory_order_relaxed);
    s.pops_conflict = vstats_->pops_conflict.load(std::memory_order_relaxed);
    s.pops_empty = vstats_->pops_empty.load(std::memory_order_relaxed);
    s.victim_fences = vstats_->victim_fences.load(std::memory_order_relaxed);
    s.victim_serializations =
        vstats_->victim_serializations.load(std::memory_order_relaxed);
    s.steals_success = tstats_->steals_success.load(std::memory_order_relaxed);
    s.steals_empty = tstats_->steals_empty.load(std::memory_order_relaxed);
    s.thief_fences = tstats_->thief_fences.load(std::memory_order_relaxed);
    s.serializations = tstats_->serializations.load(std::memory_order_relaxed);
    return s;
  }

  void reset_stats() noexcept {
    vstats_->reset();
    tstats_->reset();
  }

 private:
  CacheAligned<std::atomic<std::int64_t>> head_{0};
  CacheAligned<std::atomic<std::int64_t>> tail_{0};
  CacheAligned<VictimCounters> vstats_;  // victim-written fields only
  CacheAligned<ThiefCounters> tstats_;   // thief-written (gate-serialized)
  std::mutex gate_;
  typename P::Handle owner_handle_{};
  // Relaxed-atomic cells: a thief reads buffer_[h] only after bumping head
  // (so the slot is already consumed from the protocol's point of view),
  // and once indices wrap the victim may push into that same cell while
  // the thief's read is still in flight. The protocol keeps the *values*
  // straight, but the cell access itself must be atomic to be defined —
  // same fix as ChaseLevDeque's buffer (which TSan flagged outright).
  std::vector<std::atomic<TaskBase*>> buffer_;
};

}  // namespace lbmf::ws

#if defined(LBMF_EXTRACT) && LBMF_EXTRACT
#include "lbmf/extract/annotate.hpp"

namespace lbmf::ws {

/// The pop()/steal() Dekker protocol above, annotated for lbmf::extract.
/// Locations: [T] tail (init 1: one task left), [H] head, [G] the thief
/// gate, [TK0]/[TK1] per-side "I executed the last task" tokens. The
/// recording mirrors pop() and steal() line for line — announce, check,
/// retreat-into-the-gate — with the two fence decisions per side left as
/// `?fence` holes for lbmf::infer; `lbmf_extract the-deque` regenerates
/// examples/litmus/the_deque_holes.lit from exactly this function.
inline extract::Spec record_the_deque_protocol() {
  using namespace extract;
  Recorder rec("the-deque");
  LBMF_INIT(rec, "T", 1);

  // pop(): tail_->store(t) announces the decrement, P::primary_fence()
  // is hole A, then the head check decides fast path vs the gate.
  auto victim = LBMF_ROLE(rec, "victim", 1000);
  LBMF_FENCE_HOLE(victim, "T", 0);   // announce the tail decrement
  LBMF_LOAD(victim, r0, "H");        // read the thieves' head
  LBMF_BEQ(victim, r0, 0, "claim");  // no conflict: keep the task
  LBMF_FENCE_HOLE(victim, "T", 1);   // retreat before taking the gate
  LBMF_RMW_ACQUIRE(victim, "G");     // std::lock_guard g(gate_)
  LBMF_LOAD(victim, r1, "H");        // re-check under the gate
  LBMF_BNE(victim, r1, 0, "empty");
  LBMF_STORE(victim, "T", 0);        // win the conflict: re-take the tail
  LBMF_STORE(victim, "TK0", 1);
  LBMF_LABEL(victim, "empty");
  LBMF_RMW_RELEASE(victim, "G");
  LBMF_HALT(victim);
  LBMF_LABEL(victim, "claim");
  LBMF_STORE(victim, "TK0", 1);
  LBMF_HALT(victim);

  // steal(): always under the gate; head_->store(h+1) announces, the
  // secondary fence is hole C, the empty case retreats (hole D).
  auto thief = LBMF_ROLE(rec, "thief", 1);
  LBMF_RMW_ACQUIRE(thief, "G");
  LBMF_FENCE_HOLE(thief, "H", 1);    // announce the head increment
  LBMF_LOAD(thief, r0, "T");         // read the victim's tail
  LBMF_BEQ(thief, r0, 0, "miss");
  LBMF_STORE(thief, "TK1", 1);
  LBMF_RMW_RELEASE(thief, "G");
  LBMF_HALT(thief);
  LBMF_LABEL(thief, "miss");
  LBMF_FENCE_HOLE(thief, "H", 0);    // retreat the announce
  LBMF_RMW_RELEASE(thief, "G");
  LBMF_HALT(thief);

  // The last task is executed exactly once: victim xor thief.
  LBMF_FINAL_PROPERTY(rec, "TK0", 1, "TK1", 0);
  LBMF_FINAL_PROPERTY(rec, "TK0", 0, "TK1", 1);
  return std::move(rec).take();
}

}  // namespace lbmf::ws
#endif  // LBMF_EXTRACT
