#pragma once

#include <cstddef>
#include <utility>

#include "lbmf/util/check.hpp"
#include "lbmf/ws/scheduler.hpp"

namespace lbmf::ws {

/// Divide-and-conquer parallel loop over [lo, hi): recursively splits the
/// range, spawning the left half, until chunks reach `grain`. Each split is
/// one deque push/pop under the scheduler's fence policy — the structured
/// skeleton all the Fig. 4 array benchmarks are built from.
///
/// Must be called from inside Scheduler<P>::run.
template <FencePolicy P, typename Body>
void parallel_for(std::size_t lo, std::size_t hi, std::size_t grain,
                  const Body& body) {
  LBMF_CHECK(grain >= 1);
  if (hi <= lo) return;
  if (hi - lo <= grain) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  typename Scheduler<P>::TaskGroup tg;
  auto left = tg.capture([&] { parallel_for<P>(lo, mid, grain, body); });
  tg.spawn(left);
  parallel_for<P>(mid, hi, grain, body);
  tg.sync();
}

/// Parallel reduction over [lo, hi): `leaf(i)` produces a value per index,
/// `combine(a, b)` must be associative. Deterministic combination order
/// (the split tree), so non-commutative but associative operations are
/// fine.
template <FencePolicy P, typename T, typename Leaf, typename Combine>
T parallel_reduce(std::size_t lo, std::size_t hi, std::size_t grain,
                  T identity, const Leaf& leaf, const Combine& combine) {
  LBMF_CHECK(grain >= 1);
  if (hi <= lo) return identity;
  if (hi - lo <= grain) {
    T acc = identity;
    for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, leaf(i));
    return acc;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  T left_result = identity;
  typename Scheduler<P>::TaskGroup tg;
  auto left = tg.capture([&] {
    left_result =
        parallel_reduce<P>(lo, mid, grain, identity, leaf, combine);
  });
  tg.spawn(left);
  T right_result =
      parallel_reduce<P>(mid, hi, grain, identity, leaf, combine);
  tg.sync();
  return combine(left_result, right_result);
}

/// Run two callables in parallel (spawn the first, run the second inline).
template <FencePolicy P, typename F0, typename F1>
void parallel_invoke(F0&& f0, F1&& f1) {
  typename Scheduler<P>::TaskGroup tg;
  auto t = tg.capture([&f0] { f0(); });
  tg.spawn(t);
  f1();
  tg.sync();
}

/// Run three callables in parallel.
template <FencePolicy P, typename F0, typename F1, typename F2>
void parallel_invoke(F0&& f0, F1&& f1, F2&& f2) {
  typename Scheduler<P>::TaskGroup tg;
  auto t0 = tg.capture([&f0] { f0(); });
  auto t1 = tg.capture([&f1] { f1(); });
  tg.spawn(t0);
  tg.spawn(t1);
  f2();
  tg.sync();
}

/// Elementwise transform: out[i] = f(i) for i in [lo, hi).
template <FencePolicy P, typename T, typename F>
void parallel_transform(std::size_t lo, std::size_t hi, std::size_t grain,
                        T* out, const F& f) {
  parallel_for<P>(lo, hi, grain, [&](std::size_t i) { out[i] = f(i); });
}

}  // namespace lbmf::ws
