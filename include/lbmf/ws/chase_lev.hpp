#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "lbmf/core/policies.hpp"
#include "lbmf/util/cacheline.hpp"
#include "lbmf/util/check.hpp"
#include "lbmf/ws/deque.hpp"

namespace lbmf::ws {

class TaskBase;

/// The Chase-Lev lock-free work-stealing deque, parameterized on the fence
/// policy — demonstrating that the paper's l-mfence applies beyond the
/// Cilk-5 THE protocol: Chase-Lev's take() contains the *same* Dekker
/// duality (publish `bottom`, then read `top`), and its required StoreLoad
/// fence is exactly what the asymmetric policies replace with a
/// compiler fence plus thief-side remote serialization.
///
///   take  (owner):  bottom = b-1; <primary fence>;  t = top; ...
///   steal (thief):  t = top; <secondary fence + serialize>; b = bottom; CAS
///
/// Thieves race each other with a CAS on `top` instead of a gate lock —
/// otherwise the synchronization shape matches TheDeque, so the two can be
/// benchmarked one against the other with everything else constant.
template <FencePolicy P>
class ChaseLevDeque {
 public:
  static constexpr std::size_t kCapacity = std::size_t{1} << 15;

  ChaseLevDeque() : buffer_(kCapacity) {}
  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  void set_owner_handle(const typename P::Handle& h) noexcept {
    owner_handle_ = h;
  }

  /// Owner-only: push at the bottom.
  void push(TaskBase* task) {
    const std::int64_t b = bottom_->load(std::memory_order_relaxed);
    const std::int64_t t = top_->load(std::memory_order_acquire);
    LBMF_CHECK_MSG(b - t < static_cast<std::int64_t>(kCapacity),
                   "Chase-Lev deque overflow");
    buffer_[static_cast<std::size_t>(b) & (kCapacity - 1)] = task;
    bottom_->store(b + 1, std::memory_order_release);
    ++vstats_->pushes;
  }

  /// Owner-only: take from the bottom; nullptr when empty.
  TaskBase* take() {
    const std::int64_t b = bottom_->load(std::memory_order_relaxed) - 1;
    bottom_->store(b, std::memory_order_release);  // announce (L1 = 1)
    P::primary_fence();                            // the l-mfence slot
    ++vstats_->victim_fences;
    std::int64_t t = top_->load(std::memory_order_relaxed);
    if (t < b) {
      // More than one task: no race possible on this element.
      ++vstats_->pops_fast;
      return buffer_[static_cast<std::size_t>(b) & (kCapacity - 1)];
    }
    TaskBase* result = nullptr;
    ++vstats_->pops_conflict;
    if (t == b) {
      // Last element: race the thieves via CAS on top.
      if (top_->compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        result = buffer_[static_cast<std::size_t>(b) & (kCapacity - 1)];
      }
    }
    bottom_->store(b + 1, std::memory_order_relaxed);  // restore
    if (result == nullptr) ++vstats_->pops_empty;
    return result;
  }

  /// Any thief: steal from the top; nullptr when empty or lost the race.
  TaskBase* steal() {
    std::int64_t t = top_->load(std::memory_order_acquire);
    P::secondary_fence();
    if (P::serialize(owner_handle_)) {
      tstats_->serializations.fetch_add(1, std::memory_order_relaxed);
    }
    tstats_->thief_fences.fetch_add(1, std::memory_order_relaxed);
    const std::int64_t b = bottom_->load(std::memory_order_acquire);
    if (t >= b) {
      tstats_->steals_empty.fetch_add(1, std::memory_order_relaxed);
      return nullptr;  // empty
    }
    TaskBase* task = buffer_[static_cast<std::size_t>(t) & (kCapacity - 1)];
    if (!top_->compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                       std::memory_order_relaxed)) {
      tstats_->steals_empty.fetch_add(1, std::memory_order_relaxed);
      return nullptr;  // lost to another thief or to the owner's take
    }
    tstats_->steals_success.fetch_add(1, std::memory_order_relaxed);
    return task;
  }

  /// Merged snapshot; thief counters are atomics because Chase-Lev thieves
  /// race each other without a gate.
  DequeStats stats() const noexcept {
    DequeStats s = *vstats_;
    s.steals_success = tstats_->steals_success.load(std::memory_order_relaxed);
    s.steals_empty = tstats_->steals_empty.load(std::memory_order_relaxed);
    s.thief_fences = tstats_->thief_fences.load(std::memory_order_relaxed);
    s.serializations =
        tstats_->serializations.load(std::memory_order_relaxed);
    return s;
  }

  void reset_stats() noexcept {
    *vstats_ = DequeStats{};
    tstats_->steals_success.store(0, std::memory_order_relaxed);
    tstats_->steals_empty.store(0, std::memory_order_relaxed);
    tstats_->thief_fences.store(0, std::memory_order_relaxed);
    tstats_->serializations.store(0, std::memory_order_relaxed);
  }

  /// Scheduler-facing alias so TheDeque and ChaseLevDeque are drop-in
  /// interchangeable (Chase-Lev literature calls this operation take()).
  TaskBase* pop() { return take(); }

  bool looks_empty() const noexcept {
    return top_->load(std::memory_order_acquire) >=
           bottom_->load(std::memory_order_acquire);
  }

  std::int64_t size_estimate() const noexcept {
    return bottom_->load(std::memory_order_acquire) -
           top_->load(std::memory_order_acquire);
  }

 private:
  struct ThiefStats {
    std::atomic<std::uint64_t> steals_success{0};
    std::atomic<std::uint64_t> steals_empty{0};
    std::atomic<std::uint64_t> thief_fences{0};
    std::atomic<std::uint64_t> serializations{0};
  };

  CacheAligned<std::atomic<std::int64_t>> top_{0};
  CacheAligned<std::atomic<std::int64_t>> bottom_{0};
  CacheAligned<DequeStats> vstats_;   // owner-written fields only
  CacheAligned<ThiefStats> tstats_;   // thief-written (racing, atomic)
  typename P::Handle owner_handle_{};
  std::vector<TaskBase*> buffer_;
};

}  // namespace lbmf::ws
