#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "lbmf/core/policies.hpp"
#include "lbmf/util/cacheline.hpp"
#include "lbmf/util/check.hpp"
#include "lbmf/ws/deque.hpp"

namespace lbmf::ws {

class TaskBase;

/// The Chase-Lev lock-free work-stealing deque, parameterized on the fence
/// policy — demonstrating that the paper's l-mfence applies beyond the
/// Cilk-5 THE protocol: Chase-Lev's take() contains the *same* Dekker
/// duality (publish `bottom`, then read `top`), and its required StoreLoad
/// fence is exactly what the asymmetric policies replace with a
/// compiler fence plus thief-side remote serialization.
///
///   take  (owner):  bottom = b-1; <primary fence>;  t = top; ...
///   steal (thief):  t = top; <secondary fence + serialize>; b = bottom; CAS
///
/// Thieves race each other with a CAS on `top` instead of a gate lock —
/// otherwise the synchronization shape matches TheDeque, so the two can be
/// benchmarked one against the other with everything else constant.
template <FencePolicy P>
class ChaseLevDeque {
 public:
  static constexpr std::size_t kCapacity = std::size_t{1} << 15;

  ChaseLevDeque() : buffer_(kCapacity) {}
  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  void set_owner_handle(const typename P::Handle& h) noexcept {
    owner_handle_ = h;
  }

  /// Owner-only: push at the bottom.
  void push(TaskBase* task) {
    const std::int64_t b = bottom_->load(std::memory_order_relaxed);
    const std::int64_t t = top_->load(std::memory_order_acquire);
    LBMF_CHECK_MSG(b - t < static_cast<std::int64_t>(kCapacity),
                   "Chase-Lev deque overflow");
    buffer_[static_cast<std::size_t>(b) & (kCapacity - 1)].store(
        task, std::memory_order_relaxed);
    bottom_->store(b + 1, std::memory_order_release);
    bump_relaxed(vstats_->pushes);
  }

  /// Owner-only: take from the bottom; nullptr when empty.
  TaskBase* take() {
    const std::int64_t b = bottom_->load(std::memory_order_relaxed) - 1;
    bottom_->store(b, std::memory_order_release);  // announce (L1 = 1)
    P::primary_fence();                            // the l-mfence slot
    bump_relaxed(vstats_->victim_fences);
    std::int64_t t = top_->load(std::memory_order_relaxed);
    if (t < b) {
      // More than one task: no race possible on this element.
      bump_relaxed(vstats_->pops_fast);
      return buffer_[static_cast<std::size_t>(b) & (kCapacity - 1)].load(
          std::memory_order_relaxed);
    }
    TaskBase* result = nullptr;
    bump_relaxed(vstats_->pops_conflict);
    if (t == b) {
      // Last element: race the thieves via CAS on top.
      if (top_->compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        result = buffer_[static_cast<std::size_t>(b) & (kCapacity - 1)].load(
            std::memory_order_relaxed);
      }
    }
    bottom_->store(b + 1, std::memory_order_relaxed);  // restore
    if (result == nullptr) bump_relaxed(vstats_->pops_empty);
    return result;
  }

  /// Any thief: steal from the top; nullptr when empty or lost the race.
  TaskBase* steal() {
    std::int64_t t = top_->load(std::memory_order_acquire);
    P::secondary_fence();
    if (P::serialize(owner_handle_)) {
      tstats_->serializations.fetch_add(1, std::memory_order_relaxed);
    }
    tstats_->thief_fences.fetch_add(1, std::memory_order_relaxed);
    const std::int64_t b = bottom_->load(std::memory_order_acquire);
    if (t >= b) {
      tstats_->steals_empty.fetch_add(1, std::memory_order_relaxed);
      return nullptr;  // empty
    }
    TaskBase* task = buffer_[static_cast<std::size_t>(t) & (kCapacity - 1)]
                         .load(std::memory_order_relaxed);
    if (!top_->compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                       std::memory_order_relaxed)) {
      tstats_->steals_empty.fetch_add(1, std::memory_order_relaxed);
      return nullptr;  // lost to another thief or to the owner's take
    }
    tstats_->steals_success.fetch_add(1, std::memory_order_relaxed);
    return task;
  }

  /// Merged snapshot; exact when quiescent, well-defined (relaxed atomic
  /// loads) at any time. Thieves race each other without a gate, hence
  /// their fetch_add above; the owner's counters are single-writer and use
  /// the lock-prefix-free bump_relaxed.
  DequeStats stats() const noexcept {
    DequeStats s;
    s.pushes = vstats_->pushes.load(std::memory_order_relaxed);
    s.pops_fast = vstats_->pops_fast.load(std::memory_order_relaxed);
    s.pops_conflict = vstats_->pops_conflict.load(std::memory_order_relaxed);
    s.pops_empty = vstats_->pops_empty.load(std::memory_order_relaxed);
    s.victim_fences = vstats_->victim_fences.load(std::memory_order_relaxed);
    s.steals_success = tstats_->steals_success.load(std::memory_order_relaxed);
    s.steals_empty = tstats_->steals_empty.load(std::memory_order_relaxed);
    s.thief_fences = tstats_->thief_fences.load(std::memory_order_relaxed);
    s.serializations = tstats_->serializations.load(std::memory_order_relaxed);
    return s;
  }

  void reset_stats() noexcept {
    vstats_->reset();
    tstats_->reset();
  }

  /// Scheduler-facing alias so TheDeque and ChaseLevDeque are drop-in
  /// interchangeable (Chase-Lev literature calls this operation take()).
  TaskBase* pop() { return take(); }

  /// Advisory only — same contract (and same debug tripwire) as
  /// TheDeque::looks_empty(): the hint may be stale before it returns, so
  /// a non-empty answer only ever means "worth trying".
  bool looks_empty() const noexcept {
    return top_->load(std::memory_order_acquire) >=
           bottom_->load(std::memory_order_acquire);
  }

  /// See TheDeque::pop_expecting_nonempty().
  TaskBase* pop_expecting_nonempty() {
    TaskBase* t = take();
#ifndef NDEBUG
    LBMF_CHECK_MSG(t != nullptr,
                   "looks_empty() is advisory, not authoritative: the deque "
                   "that looked non-empty was drained before take()");
#endif
    return t;
  }

  std::int64_t size_estimate() const noexcept {
    return bottom_->load(std::memory_order_acquire) -
           top_->load(std::memory_order_acquire);
  }

 private:
  CacheAligned<std::atomic<std::int64_t>> top_{0};
  CacheAligned<std::atomic<std::int64_t>> bottom_{0};
  CacheAligned<VictimCounters> vstats_;  // owner-written fields only
  CacheAligned<ThiefCounters> tstats_;   // thief-written (racing: fetch_add)
  typename P::Handle owner_handle_{};
  // Relaxed-atomic cells (plain MOVs on x86): a thief's speculative read
  // of buffer_[t] before its CAS can overlap the owner's push into the
  // same cell once indices wrap — the classic Chase-Lev buffer race. The
  // stale value is discarded (the CAS fails), but the access itself must
  // be atomic or it is UB; this mirrors the C11 formalization (Lê et al.,
  // PPoPP'13). TSan caught the plain-pointer version via deque_tsan_test.
  std::vector<std::atomic<TaskBase*>> buffer_;
};

}  // namespace lbmf::ws
