#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "lbmf/core/policies.hpp"
#include "lbmf/util/cacheline.hpp"
#include "lbmf/util/check.hpp"
#include "lbmf/ws/deque.hpp"

namespace lbmf::ws {

class TaskBase;

/// The Chase-Lev lock-free work-stealing deque, parameterized on the fence
/// policy — demonstrating that the paper's l-mfence applies beyond the
/// Cilk-5 THE protocol: Chase-Lev's take() contains the *same* Dekker
/// duality (publish `bottom`, then read `top`), and its required StoreLoad
/// fence is exactly what the asymmetric policies replace with a
/// compiler fence plus thief-side remote serialization.
///
///   take  (owner):  bottom = b-1; <primary fence>;  t = top; ...
///   steal (thief):  t = top; <secondary fence + serialize>; b = bottom; CAS
///
/// Thieves race each other with a CAS on `top` instead of a gate lock —
/// otherwise the synchronization shape matches TheDeque, so the two can be
/// benchmarked one against the other with everything else constant.
template <FencePolicy P>
class ChaseLevDeque {
 public:
  static constexpr std::size_t kCapacity = std::size_t{1} << 15;

  ChaseLevDeque() : buffer_(kCapacity) {}
  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  void set_owner_handle(const typename P::Handle& h) noexcept {
    owner_handle_ = h;
  }

  /// Owner-only: push at the bottom.
  void push(TaskBase* task) {
    const std::int64_t b = bottom_->load(std::memory_order_relaxed);
    const std::int64_t t = top_->load(std::memory_order_acquire);
    LBMF_CHECK_MSG(b - t < static_cast<std::int64_t>(kCapacity),
                   "Chase-Lev deque overflow");
    buffer_[static_cast<std::size_t>(b) & (kCapacity - 1)].store(
        task, std::memory_order_relaxed);
    bottom_->store(b + 1, std::memory_order_release);
    bump_relaxed(vstats_->pushes);
  }

  /// Owner-only: take from the bottom; nullptr when empty.
  TaskBase* take() {
    const std::int64_t b = bottom_->load(std::memory_order_relaxed) - 1;
    bottom_->store(b, std::memory_order_release);  // announce (L1 = 1)
    P::primary_fence();                            // the l-mfence slot
    bump_relaxed(vstats_->victim_fences);
    std::int64_t t = top_->load(std::memory_order_relaxed);
    if (t < b) {
      // More than one task: no race possible on this element.
      bump_relaxed(vstats_->pops_fast);
      return buffer_[static_cast<std::size_t>(b) & (kCapacity - 1)].load(
          std::memory_order_relaxed);
    }
    TaskBase* result = nullptr;
    bump_relaxed(vstats_->pops_conflict);
    if (t == b) {
      // Last element: race the thieves via CAS on top.
      if (top_->compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        result = buffer_[static_cast<std::size_t>(b) & (kCapacity - 1)].load(
            std::memory_order_relaxed);
      }
    }
    bottom_->store(b + 1, std::memory_order_relaxed);  // restore
    if (result == nullptr) bump_relaxed(vstats_->pops_empty);
    return result;
  }

  /// Any thief: steal from the top; nullptr when empty or lost the race.
  TaskBase* steal() {
    std::int64_t t = top_->load(std::memory_order_acquire);
    P::secondary_fence();
    if (P::serialize(owner_handle_)) {
      tstats_->serializations.fetch_add(1, std::memory_order_relaxed);
    }
    tstats_->thief_fences.fetch_add(1, std::memory_order_relaxed);
    const std::int64_t b = bottom_->load(std::memory_order_acquire);
    if (t >= b) {
      tstats_->steals_empty.fetch_add(1, std::memory_order_relaxed);
      return nullptr;  // empty
    }
    TaskBase* task = buffer_[static_cast<std::size_t>(t) & (kCapacity - 1)]
                         .load(std::memory_order_relaxed);
    if (!top_->compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                       std::memory_order_relaxed)) {
      tstats_->steals_empty.fetch_add(1, std::memory_order_relaxed);
      return nullptr;  // lost to another thief or to the owner's take
    }
    tstats_->steals_success.fetch_add(1, std::memory_order_relaxed);
    return task;
  }

  /// Merged snapshot; exact when quiescent, well-defined (relaxed atomic
  /// loads) at any time. Thieves race each other without a gate, hence
  /// their fetch_add above; the owner's counters are single-writer and use
  /// the lock-prefix-free bump_relaxed.
  DequeStats stats() const noexcept {
    DequeStats s;
    s.pushes = vstats_->pushes.load(std::memory_order_relaxed);
    s.pops_fast = vstats_->pops_fast.load(std::memory_order_relaxed);
    s.pops_conflict = vstats_->pops_conflict.load(std::memory_order_relaxed);
    s.pops_empty = vstats_->pops_empty.load(std::memory_order_relaxed);
    s.victim_fences = vstats_->victim_fences.load(std::memory_order_relaxed);
    s.steals_success = tstats_->steals_success.load(std::memory_order_relaxed);
    s.steals_empty = tstats_->steals_empty.load(std::memory_order_relaxed);
    s.thief_fences = tstats_->thief_fences.load(std::memory_order_relaxed);
    s.serializations = tstats_->serializations.load(std::memory_order_relaxed);
    return s;
  }

  void reset_stats() noexcept {
    vstats_->reset();
    tstats_->reset();
  }

  /// Scheduler-facing alias so TheDeque and ChaseLevDeque are drop-in
  /// interchangeable (Chase-Lev literature calls this operation take()).
  TaskBase* pop() { return take(); }

  /// Advisory only — same contract (and same debug tripwire) as
  /// TheDeque::looks_empty(): the hint may be stale before it returns, so
  /// a non-empty answer only ever means "worth trying".
  bool looks_empty() const noexcept {
    return top_->load(std::memory_order_acquire) >=
           bottom_->load(std::memory_order_acquire);
  }

  /// See TheDeque::pop_expecting_nonempty().
  TaskBase* pop_expecting_nonempty() {
    TaskBase* t = take();
#ifndef NDEBUG
    LBMF_CHECK_MSG(t != nullptr,
                   "looks_empty() is advisory, not authoritative: the deque "
                   "that looked non-empty was drained before take()");
#endif
    return t;
  }

  std::int64_t size_estimate() const noexcept {
    return bottom_->load(std::memory_order_acquire) -
           top_->load(std::memory_order_acquire);
  }

 private:
  CacheAligned<std::atomic<std::int64_t>> top_{0};
  CacheAligned<std::atomic<std::int64_t>> bottom_{0};
  CacheAligned<VictimCounters> vstats_;  // owner-written fields only
  CacheAligned<ThiefCounters> tstats_;   // thief-written (racing: fetch_add)
  typename P::Handle owner_handle_{};
  // Relaxed-atomic cells (plain MOVs on x86): a thief's speculative read
  // of buffer_[t] before its CAS can overlap the owner's push into the
  // same cell once indices wrap — the classic Chase-Lev buffer race. The
  // stale value is discarded (the CAS fails), but the access itself must
  // be atomic or it is UB; this mirrors the C11 formalization (Lê et al.,
  // PPoPP'13). TSan caught the plain-pointer version via deque_tsan_test.
  std::vector<std::atomic<TaskBase*>> buffer_;
};

}  // namespace lbmf::ws

#if defined(LBMF_EXTRACT) && LBMF_EXTRACT
#include "lbmf/extract/annotate.hpp"

namespace lbmf::ws {

/// take()/steal() reduced to the classic TSO double-take (Lê et al.,
/// CGO'13), annotated for lbmf::extract. Locations: [B] bottom (init 2:
/// elements at 0 and 1), [S] top, [C] the CAS gate, [TK1]/[TS0]/[TS1]
/// who-got-which-element tokens. The two byte-identical thieves are
/// recorded by replaying one annotation lambda twice and declared
/// symmetric; `lbmf_extract chase-lev` regenerates
/// examples/litmus/chase_lev.lit from exactly this function.
inline extract::Spec record_chase_lev_protocol() {
  using namespace extract;
  Recorder rec("chase-lev");
  LBMF_INIT(rec, "B", 2);

  // take(): publish the bottom decrement (hole A — the famous fence),
  // read top, and branch: fast take, CAS race for the last element, or
  // empty-and-restore.
  auto owner = LBMF_ROLE(rec, "owner", 1000);
  LBMF_FENCE_HOLE(owner, "B", 1);    // publish bottom 2 -> 1
  LBMF_LOAD(owner, r0, "S");         // read top
  LBMF_BEQ(owner, r0, 0, "fast");    // two left: take elem1 CAS-free
  LBMF_BEQ(owner, r0, 1, "race");    // last element: CAS vs the thieves
  LBMF_STORE(owner, "B", 2);         // empty: restore bottom
  LBMF_HALT(owner);
  LBMF_LABEL(owner, "fast");
  LBMF_STORE(owner, "TK1", 1);       // owner takes elem1 fence-free
  LBMF_HALT(owner);
  LBMF_LABEL(owner, "race");
  LBMF_RMW_ACQUIRE(owner, "C");
  LBMF_LOAD(owner, r1, "S");         // re-read top under the CAS
  LBMF_BNE(owner, r1, 1, "lost");    // a thief won
  LBMF_STORE(owner, "S", 2);         // CAS success: advance top
  LBMF_STORE(owner, "TK1", 1);
  LBMF_LABEL(owner, "lost");
  LBMF_RMW_RELEASE(owner, "C");
  LBMF_HALT(owner);

  // steal(): optimistic top read, then the CAS gate with the in-gate
  // re-check; the top-advance publication is the thief-side hole.
  auto steal = [&rec](const char* name) {
    auto thief = LBMF_ROLE(rec, name, 1);
    LBMF_LOAD(thief, r0, "S");       // optimistic top read
    LBMF_BEQ(thief, r0, 2, "gone");  // everything already taken
    LBMF_RMW_ACQUIRE(thief, "C");    // CAS(top): locked RMW
    LBMF_LOAD(thief, r1, "S");       // re-read top under the CAS
    LBMF_BEQ(thief, r1, 2, "out");
    LBMF_BEQ(thief, r1, 0, "take0");
    LBMF_LOAD(thief, r2, "B");       // elem1 only if bottom is still 2
    LBMF_BNE(thief, r2, 2, "out");   // owner owns elem1: empty for us
    LBMF_FENCE_HOLE(thief, "S", 2);  // publish the CAS top 1 -> 2
    LBMF_STORE(thief, "TS1", 1);     // stole elem1
    LBMF_RMW_RELEASE(thief, "C");
    LBMF_HALT(thief);
    LBMF_LABEL(thief, "take0");
    LBMF_FENCE_HOLE(thief, "S", 1);  // publish the CAS top 0 -> 1
    LBMF_STORE(thief, "TS0", 1);     // stole elem0
    LBMF_RMW_RELEASE(thief, "C");
    LBMF_HALT(thief);
    LBMF_LABEL(thief, "out");
    LBMF_RMW_RELEASE(thief, "C");
    LBMF_LABEL(thief, "gone");
    LBMF_HALT(thief);
  };
  steal("thief1");
  steal("thief2");
  LBMF_SYMMETRIC(rec, "thief1", "thief2");

  // elem0 goes to exactly one thief; elem1 to the owner xor a thief.
  LBMF_FINAL_PROPERTY(rec, "TK1", 1, "TS0", 1, "TS1", 0);
  LBMF_FINAL_PROPERTY(rec, "TK1", 0, "TS0", 1, "TS1", 1);
  return std::move(rec).take();
}

}  // namespace lbmf::ws
#endif  // LBMF_EXTRACT
