#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>
#include <utility>

namespace lbmf::ws {

class TaskGroupBase;

/// A unit of work in the runtime. Tasks are intrusive and typically live on
/// the *stack* of the spawning function (like Cilk-5 frames, and unlike
/// heap-allocating task systems) so that spawn overhead is dominated by the
/// deque protocol — the quantity the paper's experiment varies.
class TaskBase {
 public:
  virtual ~TaskBase() = default;

  /// Run the task and notify its group. Called exactly once, by the worker
  /// that popped or stole the task.
  void run();

 protected:
  explicit TaskBase(TaskGroupBase& group) : group_(&group) {}

 private:
  virtual void execute() = 0;

  TaskGroupBase* group_;
};

/// Join counter shared by the tasks a frame spawns. The scheduler layer
/// (Scheduler<P>::TaskGroup) wraps this with spawn/sync; this base holds
/// just the policy-independent bookkeeping.
class TaskGroupBase {
 public:
  TaskGroupBase() = default;
  TaskGroupBase(const TaskGroupBase&) = delete;
  TaskGroupBase& operator=(const TaskGroupBase&) = delete;

  bool done() const noexcept {
    return pending_.load(std::memory_order_acquire) == 0;
  }

  std::uint64_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

 // Manual task accounting — used by the scheduler for root injection and
  // by TaskGroup::spawn. A task registered with add_pending() must be
  // balanced by exactly one complete_one() (TaskBase::run does this).
  void add_pending() noexcept {
    pending_.fetch_add(1, std::memory_order_relaxed);
  }

  void complete_one() noexcept {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  }

 private:
  std::atomic<std::uint64_t> pending_{0};
};

inline void TaskBase::run() {
  execute();
  group_->complete_one();
}

/// Stack-allocatable task wrapping a callable.
template <typename F>
class ClosureTask final : public TaskBase {
 public:
  static_assert(std::is_invocable_v<F&>, "task callable must be invocable");

  ClosureTask(TaskGroupBase& group, F f)
      : TaskBase(group), f_(std::move(f)) {}

 private:
  void execute() override { f_(); }

  F f_;
};

}  // namespace lbmf::ws
