#pragma once

// The "pure recursion" benchmarks of Fig. 4: fib, fibx, nqueens, knapsack.
// fib/fibx/knapsack deliberately have *uncoarsened* base cases — the paper
// uses them to measure spawn overhead, i.e. the fence cost itself.

#include <array>
#include <atomic>
#include <cstdint>

#include "lbmf/cilkbench/common.hpp"

namespace lbmf::cilkbench {

/// Recursive Fibonacci — one spawn per internal node; the canonical spawn-
/// overhead probe ("the number suggests that the spawn overhead is cut by
/// half if one could avoid the fence", Sec. 5).
template <FencePolicy P>
std::uint64_t fib(long n) {
  if (n < 2) return static_cast<std::uint64_t>(n);
  std::uint64_t a = 0;
  typename ws::Scheduler<P>::TaskGroup tg;
  auto t = tg.capture([n, &a] { a = fib<P>(n - 1); });
  tg.spawn(t);
  const std::uint64_t b = fib<P>(n - 2);
  tg.sync();
  return a + b;
}

/// fibx — the skewed-recursion probe: alternates a deep branch (n-1) with a
/// shallow branch (n-gap), i.e. X(n) = X(n-1) + X(n-gap). The paper runs it
/// at n=280 with gap 40; `gap` scales that shape to our input sizes. The
/// result is a tall, thin spawn tree: lots of spawns with little work each
/// and a long span — spawn overhead dominated, like fib, but lopsided.
template <FencePolicy P>
std::uint64_t fibx(long n, long gap) {
  if (n < 2) return static_cast<std::uint64_t>(n);
  std::uint64_t a = 0;
  typename ws::Scheduler<P>::TaskGroup tg;
  auto t = tg.capture(
      [&, n, gap] { a = fibx<P>(n - gap < 0 ? 0 : n - gap, gap); });
  tg.spawn(t);
  const std::uint64_t b = fibx<P>(n - 1, gap);
  tg.sync();
  return a + b;
}

// --------------------------------------------------------------- n-queens

namespace detail {

inline bool queen_ok(const std::array<std::int8_t, 24>& rows, int n, int col) {
  for (int i = 0; i < n; ++i) {
    const int d = rows[i] - col;
    if (d == 0 || d == n - i || d == i - n) return false;
  }
  return true;
}

template <FencePolicy P>
std::uint64_t nqueens_rec(std::array<std::int8_t, 24> rows, int placed,
                          int size, int spawn_depth) {
  if (placed == size) return 1;
  if (spawn_depth == 0) {
    // Serial tail: no spawning below the cutoff.
    std::uint64_t total = 0;
    for (int col = 0; col < size; ++col) {
      if (queen_ok(rows, placed, col)) {
        rows[placed] = static_cast<std::int8_t>(col);
        total += nqueens_rec<P>(rows, placed + 1, size, 0);
      }
    }
    return total;
  }
  std::array<std::uint64_t, 24> partial{};
  typename ws::Scheduler<P>::TaskGroup tg;
  // One stack-allocated task per candidate column; storage must persist
  // until sync, so build them all before syncing.
  struct ColTask {
    std::array<std::int8_t, 24> rows;
    std::uint64_t* out;
    int placed, size, depth;
    void operator()() const {
      *out = nqueens_rec<P>(rows, placed, size, depth);
    }
  };
  std::array<ws::ClosureTask<ColTask>*, 24> spawned{};
  alignas(ws::ClosureTask<ColTask>) unsigned char
      storage[24][sizeof(ws::ClosureTask<ColTask>)];
  int n_spawned = 0;
  for (int col = 0; col < size; ++col) {
    if (!queen_ok(rows, placed, col)) continue;
    auto next = rows;
    next[placed] = static_cast<std::int8_t>(col);
    auto* task = new (storage[n_spawned]) ws::ClosureTask<ColTask>(
        tg, ColTask{next, &partial[static_cast<std::size_t>(n_spawned)],
                    placed + 1, size, spawn_depth - 1});
    spawned[static_cast<std::size_t>(n_spawned)] = task;
    tg.spawn(*task);
    ++n_spawned;
  }
  tg.sync();
  std::uint64_t total = 0;
  for (int i = 0; i < n_spawned; ++i) {
    total += partial[static_cast<std::size_t>(i)];
    using ColClosure = ws::ClosureTask<ColTask>;
    spawned[static_cast<std::size_t>(i)]->~ColClosure();
  }
  return total;
}

}  // namespace detail

/// Count the placements of `size` non-attacking queens (paper input: 14).
/// Spawns per-column up to `spawn_depth` levels, serial below.
template <FencePolicy P>
std::uint64_t nqueens(int size, int spawn_depth = 3) {
  LBMF_CHECK(size >= 1 && size <= 24);
  return detail::nqueens_rec<P>({}, 0, size, spawn_depth);
}

// --------------------------------------------------------------- knapsack

struct KnapsackItem {
  int value;
  int weight;
};

/// Deterministic pseudo-random knapsack instance (paper input: 32 items).
std::vector<KnapsackItem> make_knapsack_items(int n, std::uint64_t seed);

namespace detail {

/// Branch-and-bound 0/1 knapsack, cilk-style: spawn the "take" branch,
/// run the "skip" branch inline; a shared atomic best bound prunes. The
/// bound makes the workload irregular — the paper's knapsack is also
/// uncoarsened, so spawn overhead dominates.
template <FencePolicy P>
void knapsack_rec(const std::vector<KnapsackItem>& items, int idx,
                  int cap_left, int value, std::atomic<int>& best) {
  if (cap_left < 0) return;
  if (idx == static_cast<int>(items.size())) {
    int cur = best.load(std::memory_order_relaxed);
    while (value > cur && !best.compare_exchange_weak(
                              cur, value, std::memory_order_relaxed)) {
    }
    return;
  }
  // Optimistic bound: value of everything left (fractional relaxation would
  // be tighter; this keeps more parallelism alive, like the cilk demo).
  int ub = value;
  for (std::size_t i = static_cast<std::size_t>(idx); i < items.size(); ++i) {
    ub += items[i].value;
  }
  if (ub <= best.load(std::memory_order_relaxed)) return;

  typename ws::Scheduler<P>::TaskGroup tg;
  auto take = tg.capture([&, idx, cap_left, value] {
    knapsack_rec<P>(items, idx + 1, cap_left - items[static_cast<std::size_t>(idx)].weight,
                    value + items[static_cast<std::size_t>(idx)].value, best);
  });
  tg.spawn(take);
  knapsack_rec<P>(items, idx + 1, cap_left, value, best);
  tg.sync();
}

}  // namespace detail

/// Best achievable value for the canned instance with n items.
template <FencePolicy P>
std::uint64_t knapsack(int n, std::uint64_t seed = 0xbeef) {
  const auto items = make_knapsack_items(n, seed);
  int capacity = 0;
  for (const auto& it : items) capacity += it.weight;
  capacity /= 2;
  std::atomic<int> best{0};
  detail::knapsack_rec<P>(items, 0, capacity, 0, best);
  return static_cast<std::uint64_t>(best.load());
}

}  // namespace lbmf::cilkbench
