#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "lbmf/util/check.hpp"
#include "lbmf/util/rng.hpp"
#include "lbmf/ws/algorithms.hpp"
#include "lbmf/ws/scheduler.hpp"

namespace lbmf::cilkbench {

/// Row-major dense square/rectangular matrix used by the linear-algebra
/// benchmarks (matmul, rectmul, lu, cholesky, strassen).
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  static Matrix random(std::size_t rows, std::size_t cols,
                       std::uint64_t seed) {
    Matrix m(rows, cols);
    Xoshiro256 rng(seed);
    for (double& x : m.data_) x = rng.next_double() - 0.5;
    return m;
  }

  /// Symmetric positive-definite matrix (for cholesky) / diagonally
  /// dominant (safe for LU without pivoting).
  static Matrix random_spd(std::size_t n, std::uint64_t seed) {
    Matrix m = random(n, n, seed);
    // A := (A + A^T)/2 + n*I  — symmetric and strictly diagonally dominant.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        const double v = 0.5 * (m(i, j) + m(j, i));
        m(i, j) = v;
        m(j, i) = v;
      }
      m(i, i) += static_cast<double>(n);
    }
    return m;
  }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// A view into a sub-block of a row-major matrix: the recursive algorithms
/// partition in place without copying.
struct Block {
  double* p;          // pointer to (0, 0) of the block
  std::size_t ld;     // leading dimension (stride between rows)

  double& at(std::size_t r, std::size_t c) const noexcept {
    return p[r * ld + c];
  }
  Block sub(std::size_t r, std::size_t c) const noexcept {
    return Block{p + r * ld + c, ld};
  }
};

inline Block block_of(Matrix& m) { return Block{m.data(), m.cols()}; }

/// Quantized checksum of floating-point output, stable across policies and
/// worker counts for deterministic algorithms.
std::uint64_t checksum_doubles(const double* p, std::size_t n);

inline std::uint64_t checksum_matrix(const Matrix& m) {
  return checksum_doubles(m.data(), m.rows() * m.cols());
}

/// Combine hashes.
inline constexpr std::uint64_t hash_mix(std::uint64_t h,
                                        std::uint64_t v) noexcept {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Parallel loop skeleton used by the array benchmarks — the public
/// ws::parallel_for (every split costs one deque push/pop under the fence
/// policy being measured).
using ws::parallel_for;

}  // namespace lbmf::cilkbench
