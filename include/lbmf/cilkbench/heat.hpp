#pragma once

// heat (Fig. 4): Jacobi iteration for 2D heat diffusion on a rectangular
// grid, parallelized over rows — the benchmark the paper singles out as
// having the *fewest fences avoided per signal sent*, which is why it is
// one of the three that lose under the software prototype at 16 cores.
// Paper input: 2048 x 500 grid.

#include <cstdint>
#include <utility>
#include <vector>

#include "lbmf/cilkbench/common.hpp"

namespace lbmf::cilkbench {
namespace detail {

inline constexpr std::size_t kHeatRowGrain = 8;

}  // namespace detail

/// Run `steps` Jacobi sweeps on an nx-by-ny grid with a hot left edge;
/// returns a checksum of the final temperature field.
template <FencePolicy P>
std::uint64_t heat(std::size_t nx, std::size_t ny, std::size_t steps) {
  LBMF_CHECK(nx >= 3 && ny >= 3);
  Matrix cur(nx, ny);
  Matrix next(nx, ny);
  // Dirichlet boundary: hot left edge, cold elsewhere.
  for (std::size_t i = 0; i < nx; ++i) {
    cur(i, 0) = 100.0;
    next(i, 0) = 100.0;
  }

  for (std::size_t t = 0; t < steps; ++t) {
    parallel_for<P>(1, nx - 1, detail::kHeatRowGrain, [&](std::size_t i) {
      for (std::size_t j = 1; j + 1 < ny; ++j) {
        next(i, j) = 0.25 * (cur(i - 1, j) + cur(i + 1, j) + cur(i, j - 1) +
                             cur(i, j + 1));
      }
    });
    std::swap(cur, next);
  }
  return checksum_matrix(cur);
}

}  // namespace lbmf::cilkbench
