#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "lbmf/ws/scheduler.hpp"

namespace lbmf::cilkbench {

/// Input scales: kTest keeps every benchmark under ~100 ms for unit tests;
/// kBench is the default for the Fig. 5 reproduction on this host. Paper
/// inputs (Fig. 4) are recorded as strings for the report but are sized for
/// the authors' 16-core Opteron, not a CI container.
enum class Scale { kTest, kBench };

/// One Fig. 4 benchmark, bound to a fence policy and an input scale. run()
/// must be called from inside Scheduler<P>::run (it spawns).
struct Benchmark {
  std::string name;
  std::string description;
  std::string paper_input;
  std::string scaled_input;
  std::function<std::uint64_t()> run;

  /// Analytic estimate of the spawn-tree span T_inf in *task units* at the
  /// kBench input (recursion depth x sequential phases). Used by the Fig.
  /// 5(b) cost model to estimate parallel steal volume (classic
  /// work-stealing theory: expected steals = O(P * T_inf)), since a
  /// single-core host cannot generate real steal concurrency.
  double span_tasks = 50.0;

  /// Fraction of signals that became successful steals in the paper's own
  /// 16-core runs (Sec. 5): 53.6% for cholesky, 72.8% for lu, "over 90%"
  /// for the rest. Used to convert estimated steals into signal counts.
  double paper_steal_efficiency = 0.92;
};

/// All 12 benchmarks of Fig. 4, instantiated for fence policy P.
template <FencePolicy P>
std::vector<Benchmark> all_benchmarks(Scale scale);

/// Convenience: run one benchmark on a scheduler and return its checksum.
template <FencePolicy P>
std::uint64_t run_on(ws::Scheduler<P>& sched, const Benchmark& b) {
  std::uint64_t result = 0;
  sched.run([&] { result = b.run(); });
  return result;
}

}  // namespace lbmf::cilkbench
