#pragma once

// The dense linear-algebra benchmarks of Fig. 4: matmul, rectmul, strassen,
// lu, cholesky. All are recursive blocked algorithms over in-place Block
// views, with coarsened serial base kernels (dense.cpp) — matching the
// paper's note that these benchmarks amortize spawn overhead over plenty of
// work per fence.
//
// Substitution note (DESIGN.md): the paper's cholesky input is a *sparse*
// 4000x40000-nonzero matrix from the original Cilk-5 distribution; we use a
// dense blocked Cholesky on an SPD matrix, which exercises the same
// runtime-level behaviour (a deep spawn tree over block updates).

#include <cstdint>

#include "lbmf/cilkbench/common.hpp"

namespace lbmf::cilkbench {
namespace detail {

inline constexpr std::size_t kMatmulBase = 32;
inline constexpr std::size_t kStrassenBase = 64;
inline constexpr std::size_t kLuBase = 16;

// Serial kernels (dense.cpp).
void matmul_base(Block c, Block a, Block b, std::size_t m, std::size_t n,
                 std::size_t k, double sign);
void lu_base(Block a, std::size_t n);
void cholesky_base(Block a, std::size_t n);
void lower_solve_row(Block x, Block l, std::size_t row, std::size_t n);

/// C += sign * A*B for square power-of-two blocks, eight recursive products
/// in two parallel waves of four (the classic Cilk matmul).
template <FencePolicy P>
void matmul_rec(Block c, Block a, Block b, std::size_t n, double sign) {
  if (n <= kMatmulBase) {
    matmul_base(c, a, b, n, n, n, sign);
    return;
  }
  const std::size_t h = n / 2;
  const Block c00 = c, c01 = c.sub(0, h), c10 = c.sub(h, 0),
              c11 = c.sub(h, h);
  const Block a00 = a, a01 = a.sub(0, h), a10 = a.sub(h, 0),
              a11 = a.sub(h, h);
  const Block b00 = b, b01 = b.sub(0, h), b10 = b.sub(h, 0),
              b11 = b.sub(h, h);

  {
    typename ws::Scheduler<P>::TaskGroup tg;
    auto t1 = tg.capture([=] { matmul_rec<P>(c00, a00, b00, h, sign); });
    auto t2 = tg.capture([=] { matmul_rec<P>(c01, a00, b01, h, sign); });
    auto t3 = tg.capture([=] { matmul_rec<P>(c10, a10, b00, h, sign); });
    tg.spawn(t1);
    tg.spawn(t2);
    tg.spawn(t3);
    matmul_rec<P>(c11, a10, b01, h, sign);
    tg.sync();
  }
  {
    typename ws::Scheduler<P>::TaskGroup tg;
    auto t1 = tg.capture([=] { matmul_rec<P>(c00, a01, b10, h, sign); });
    auto t2 = tg.capture([=] { matmul_rec<P>(c01, a01, b11, h, sign); });
    auto t3 = tg.capture([=] { matmul_rec<P>(c10, a11, b10, h, sign); });
    tg.spawn(t1);
    tg.spawn(t2);
    tg.spawn(t3);
    matmul_rec<P>(c11, a11, b11, h, sign);
    tg.sync();
  }
}

/// C += A*B for an m x k by k x n product: split the largest of m, n in
/// parallel; split k serially (both halves update the same C).
template <FencePolicy P>
void rectmul_rec(Block c, Block a, Block b, std::size_t m, std::size_t n,
                 std::size_t k) {
  if (m <= kMatmulBase && n <= kMatmulBase && k <= kMatmulBase) {
    matmul_base(c, a, b, m, n, k, 1.0);
    return;
  }
  if (m >= n && m >= k) {
    const std::size_t h = m / 2;
    typename ws::Scheduler<P>::TaskGroup tg;
    auto top = tg.capture([=] { rectmul_rec<P>(c, a, b, h, n, k); });
    tg.spawn(top);
    rectmul_rec<P>(c.sub(h, 0), a.sub(h, 0), b, m - h, n, k);
    tg.sync();
  } else if (n >= k) {
    const std::size_t h = n / 2;
    typename ws::Scheduler<P>::TaskGroup tg;
    auto left = tg.capture([=] { rectmul_rec<P>(c, a, b, m, h, k); });
    tg.spawn(left);
    rectmul_rec<P>(c.sub(0, h), a, b.sub(0, h), m, n - h, k);
    tg.sync();
  } else {
    const std::size_t h = k / 2;
    rectmul_rec<P>(c, a, b, m, n, h);                       // serial in k:
    rectmul_rec<P>(c, a.sub(0, h), b.sub(h, 0), m, n, k - h);  // same C
  }
}

/// Elementwise helpers on h x h blocks (serial; cheap relative to products).
void block_add(Block out, Block x, Block y, std::size_t n);
void block_sub(Block out, Block x, Block y, std::size_t n);
void block_copy(Block out, Block x, std::size_t n);

/// Strassen multiply: C = A*B via seven recursive products run in parallel.
template <FencePolicy P>
void strassen_rec(Block c, Block a, Block b, std::size_t n) {
  if (n <= kStrassenBase) {
    matmul_base(c, a, b, n, n, n, 1.0);
    return;
  }
  const std::size_t h = n / 2;
  const Block a00 = a, a01 = a.sub(0, h), a10 = a.sub(h, 0),
              a11 = a.sub(h, h);
  const Block b00 = b, b01 = b.sub(0, h), b10 = b.sub(h, 0),
              b11 = b.sub(h, h);

  // Temporaries: 7 products plus 2 operand scratch blocks per product.
  Matrix m1(h, h), m2(h, h), m3(h, h), m4(h, h), m5(h, h), m6(h, h), m7(h, h);

  auto product = [h](Block out, Block x, Block y) {
    strassen_rec<P>(out, x, y, h);
  };

  typename ws::Scheduler<P>::TaskGroup tg;
  auto t1 = tg.capture([&, h] {  // M1 = (A00+A11)(B00+B11)
    Matrix s(h, h), t(h, h);
    block_add(block_of(s), a00, a11, h);
    block_add(block_of(t), b00, b11, h);
    product(block_of(m1), block_of(s), block_of(t));
  });
  auto t2 = tg.capture([&, h] {  // M2 = (A10+A11) B00
    Matrix s(h, h);
    block_add(block_of(s), a10, a11, h);
    product(block_of(m2), block_of(s), b00);
  });
  auto t3 = tg.capture([&, h] {  // M3 = A00 (B01-B11)
    Matrix t(h, h);
    block_sub(block_of(t), b01, b11, h);
    product(block_of(m3), a00, block_of(t));
  });
  auto t4 = tg.capture([&, h] {  // M4 = A11 (B10-B00)
    Matrix t(h, h);
    block_sub(block_of(t), b10, b00, h);
    product(block_of(m4), a11, block_of(t));
  });
  auto t5 = tg.capture([&, h] {  // M5 = (A00+A01) B11
    Matrix s(h, h);
    block_add(block_of(s), a00, a01, h);
    product(block_of(m5), block_of(s), b11);
  });
  auto t6 = tg.capture([&, h] {  // M6 = (A10-A00)(B00+B01)
    Matrix s(h, h), t(h, h);
    block_sub(block_of(s), a10, a00, h);
    block_add(block_of(t), b00, b01, h);
    product(block_of(m6), block_of(s), block_of(t));
  });
  tg.spawn(t1);
  tg.spawn(t2);
  tg.spawn(t3);
  tg.spawn(t4);
  tg.spawn(t5);
  tg.spawn(t6);
  {  // M7 = (A01-A11)(B10+B11), inline
    Matrix s(h, h), t(h, h);
    block_sub(block_of(s), a01, a11, h);
    block_add(block_of(t), b10, b11, h);
    product(block_of(m7), block_of(s), block_of(t));
  }
  tg.sync();

  // C00 = M1+M4-M5+M7; C01 = M3+M5; C10 = M2+M4; C11 = M1-M2+M3+M6.
  for (std::size_t i = 0; i < h; ++i) {
    for (std::size_t j = 0; j < h; ++j) {
      c.at(i, j) = m1.data()[i * h + j] + m4.data()[i * h + j] -
                   m5.data()[i * h + j] + m7.data()[i * h + j];
      c.sub(0, h).at(i, j) = m3.data()[i * h + j] + m5.data()[i * h + j];
      c.sub(h, 0).at(i, j) = m2.data()[i * h + j] + m4.data()[i * h + j];
      c.sub(h, h).at(i, j) = m1.data()[i * h + j] - m2.data()[i * h + j] +
                             m3.data()[i * h + j] + m6.data()[i * h + j];
    }
  }
}

/// General (possibly non-square) recursive C += sign*A*B used by the
/// solves; splits m and n in parallel, k serially.
template <FencePolicy P>
void matmul_gen(Block c, Block a, Block b, std::size_t m, std::size_t n,
                std::size_t k, double sign);

/// B := L^{-1} B where L is unit lower triangular (from LU): recursive over
/// the triangle, parallel over B's column halves.
template <FencePolicy P>
void lower_solve(Block l, Block bb, std::size_t n, std::size_t ncols) {
  if (n <= kLuBase) {
    // Forward substitution, unit diagonal.
    for (std::size_t j = 0; j < ncols; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        double s = bb.at(i, j);
        for (std::size_t t = 0; t < i; ++t) s -= l.at(i, t) * bb.at(t, j);
        bb.at(i, j) = s;
      }
    }
    return;
  }
  const std::size_t h = n / 2;
  lower_solve<P>(l, bb, h, ncols);                       // B0 := L00^-1 B0
  matmul_gen<P>(bb.sub(h, 0), l.sub(h, 0), bb, n - h, ncols, h, -1.0);
  lower_solve<P>(l.sub(h, h), bb.sub(h, 0), n - h, ncols);
}

template <FencePolicy P>
void matmul_gen(Block c, Block a, Block b, std::size_t m, std::size_t n,
                std::size_t k, double sign) {
  if (m <= kMatmulBase && n <= kMatmulBase && k <= kMatmulBase) {
    matmul_base(c, a, b, m, n, k, sign);
    return;
  }
  if (m >= n && m >= k) {
    const std::size_t h = m / 2;
    typename ws::Scheduler<P>::TaskGroup tg;
    auto top = tg.capture([=] { matmul_gen<P>(c, a, b, h, n, k, sign); });
    tg.spawn(top);
    matmul_gen<P>(c.sub(h, 0), a.sub(h, 0), b, m - h, n, k, sign);
    tg.sync();
  } else if (n >= k) {
    const std::size_t h = n / 2;
    typename ws::Scheduler<P>::TaskGroup tg;
    auto left = tg.capture([=] { matmul_gen<P>(c, a, b, m, h, k, sign); });
    tg.spawn(left);
    matmul_gen<P>(c.sub(0, h), a, b.sub(0, h), m, n - h, k, sign);
    tg.sync();
  } else {
    const std::size_t h = k / 2;
    matmul_gen<P>(c, a, b, m, n, h, sign);
    matmul_gen<P>(c, a.sub(0, h), b.sub(h, 0), m, n, k - h, sign);
  }
}

/// B := B U^{-1} with U upper triangular (non-unit diagonal).
template <FencePolicy P>
void upper_solve(Block bb, Block u, std::size_t nrows, std::size_t n) {
  if (n <= kLuBase) {
    for (std::size_t i = 0; i < nrows; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        double s = bb.at(i, j);
        for (std::size_t t = 0; t < j; ++t) s -= bb.at(i, t) * u.at(t, j);
        bb.at(i, j) = s / u.at(j, j);
      }
    }
    return;
  }
  const std::size_t h = n / 2;
  upper_solve<P>(bb, u, nrows, h);                       // B0 := B0 U00^-1
  matmul_gen<P>(bb.sub(0, h), bb, u.sub(0, h), nrows, n - h, h, -1.0);
  upper_solve<P>(bb.sub(0, h), u.sub(h, h), nrows, n - h);
}

/// In-place recursive LU without pivoting (input must be diagonally
/// dominant); stores L (unit diagonal implicit) and U packed in A.
template <FencePolicy P>
void lu_rec(Block a, std::size_t n) {
  if (n <= kLuBase) {
    lu_base(a, n);
    return;
  }
  const std::size_t h = n / 2;
  lu_rec<P>(a, h);
  {
    typename ws::Scheduler<P>::TaskGroup tg;
    auto right = tg.capture([=] { lower_solve<P>(a, a.sub(0, h), h, n - h); });
    tg.spawn(right);
    upper_solve<P>(a.sub(h, 0), a, n - h, h);
    tg.sync();
  }
  matmul_gen<P>(a.sub(h, h), a.sub(h, 0), a.sub(0, h), n - h, n - h, h, -1.0);
  lu_rec<P>(a.sub(h, h), n - h);
}

/// In-place recursive Cholesky (lower triangular result) of an SPD block.
template <FencePolicy P>
void cholesky_rec(Block a, std::size_t n) {
  if (n <= kLuBase) {
    cholesky_base(a, n);
    return;
  }
  const std::size_t h = n / 2;
  cholesky_rec<P>(a, h);
  // A10 := A10 L00^{-T}: per-row forward substitution against L00, rows in
  // parallel (each row independent, L00 read-only).
  parallel_for<P>(0, n - h, 4, [&](std::size_t r) {
    lower_solve_row(a.sub(h, 0), a, r, h);
  });
  // A11 -= A10 A10^T (full update; upper half rewritten below).
  {
    Matrix a10t(h, n - h);
    for (std::size_t i = 0; i < n - h; ++i) {
      for (std::size_t j = 0; j < h; ++j) {
        a10t(j, i) = a.sub(h, 0).at(i, j);
      }
    }
    matmul_gen<P>(a.sub(h, h), a.sub(h, 0), block_of(a10t), n - h, n - h, h,
                  -1.0);
  }
  cholesky_rec<P>(a.sub(h, h), n - h);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Public benchmark entry points: build input, run, checksum.
// ---------------------------------------------------------------------------

/// matmul (paper input: 2048): C = A*B, recursive eight-way.
template <FencePolicy P>
std::uint64_t matmul(std::size_t n, std::uint64_t seed = 0x3a3) {
  LBMF_CHECK((n & (n - 1)) == 0);
  Matrix a = Matrix::random(n, n, seed);
  Matrix b = Matrix::random(n, n, seed + 1);
  Matrix c(n, n);
  detail::matmul_rec<P>(block_of(c), block_of(a), block_of(b), n, 1.0);
  return checksum_matrix(c);
}

/// rectmul (paper input: 4096): rectangular product m x k times k x n.
template <FencePolicy P>
std::uint64_t rectmul(std::size_t m, std::size_t n, std::size_t k,
                      std::uint64_t seed = 0x7ec) {
  Matrix a = Matrix::random(m, k, seed);
  Matrix b = Matrix::random(k, n, seed + 1);
  Matrix c(m, n);
  detail::rectmul_rec<P>(block_of(c), block_of(a), block_of(b), m, n, k);
  return checksum_matrix(c);
}

/// strassen (paper input: 4096).
template <FencePolicy P>
std::uint64_t strassen(std::size_t n, std::uint64_t seed = 0x57a) {
  LBMF_CHECK((n & (n - 1)) == 0);
  Matrix a = Matrix::random(n, n, seed);
  Matrix b = Matrix::random(n, n, seed + 1);
  Matrix c(n, n);
  detail::strassen_rec<P>(block_of(c), block_of(a), block_of(b), n);
  return checksum_matrix(c);
}

/// lu (paper input: 4096): in-place LU of a diagonally dominant matrix.
template <FencePolicy P>
std::uint64_t lu(std::size_t n, std::uint64_t seed = 0x1b) {
  LBMF_CHECK((n & (n - 1)) == 0);
  Matrix a = Matrix::random_spd(n, seed);
  detail::lu_rec<P>(block_of(a), n);
  return checksum_matrix(a);
}

/// cholesky (paper input: sparse 4000/40000; dense substitution, see
/// DESIGN.md): in-place lower Cholesky factor of an SPD matrix.
template <FencePolicy P>
std::uint64_t cholesky(std::size_t n, std::uint64_t seed = 0xc401) {
  LBMF_CHECK((n & (n - 1)) == 0);
  Matrix a = Matrix::random_spd(n, seed);
  detail::cholesky_rec<P>(block_of(a), n);
  // Zero the (untouched garbage) upper triangle for a stable checksum.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) a(i, j) = 0.0;
  }
  return checksum_matrix(a);
}

}  // namespace lbmf::cilkbench
