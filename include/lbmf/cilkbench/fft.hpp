#pragma once

// fft (Fig. 4): recursive radix-2 Cooley-Tukey over std::complex<double>,
// with parallel recursion on the even/odd halves and a parallel butterfly
// combine for large sizes. Paper input: 2^26 points.

#include <complex>
#include <cstdint>
#include <numbers>
#include <vector>

#include "lbmf/cilkbench/common.hpp"

namespace lbmf::cilkbench {

using Complex = std::complex<double>;

namespace detail {

inline constexpr std::size_t kFftBase = 256;       // serial below this
inline constexpr std::size_t kButterflyGrain = 512;

inline void fft_serial(Complex* a, std::size_t n, std::size_t stride,
                       Complex* out) {
  if (n == 1) {
    out[0] = a[0];
    return;
  }
  const std::size_t half = n / 2;
  fft_serial(a, half, stride * 2, out);
  fft_serial(a + stride, half, stride * 2, out + half);
  for (std::size_t k = 0; k < half; ++k) {
    const double ang = -2.0 * std::numbers::pi * static_cast<double>(k) /
                       static_cast<double>(n);
    const Complex w(std::cos(ang), std::sin(ang));
    const Complex e = out[k];
    const Complex o = w * out[k + half];
    out[k] = e + o;
    out[k + half] = e - o;
  }
}

template <FencePolicy P>
void fft_rec(Complex* a, std::size_t n, std::size_t stride, Complex* out) {
  if (n <= kFftBase) {
    fft_serial(a, n, stride, out);
    return;
  }
  const std::size_t half = n / 2;
  {
    typename ws::Scheduler<P>::TaskGroup tg;
    auto even = tg.capture([=] { fft_rec<P>(a, half, stride * 2, out); });
    tg.spawn(even);
    fft_rec<P>(a + stride, half, stride * 2, out + half);
    tg.sync();
  }
  parallel_for<P>(0, half, kButterflyGrain, [&](std::size_t k) {
    const double ang = -2.0 * std::numbers::pi * static_cast<double>(k) /
                       static_cast<double>(n);
    const Complex w(std::cos(ang), std::sin(ang));
    const Complex e = out[k];
    const Complex o = w * out[k + half];
    out[k] = e + o;
    out[k + half] = e - o;
  });
}

}  // namespace detail

/// Forward FFT of n (power of two) pseudo-random points; returns a checksum
/// of the spectrum.
template <FencePolicy P>
std::uint64_t fft(std::size_t n, std::uint64_t seed = 0xff7) {
  LBMF_CHECK((n & (n - 1)) == 0 && n >= 2);
  std::vector<Complex> in(n);
  Xoshiro256 rng(seed);
  for (auto& x : in) x = Complex(rng.next_double() - 0.5, 0.0);
  std::vector<Complex> out(n);
  detail::fft_rec<P>(in.data(), n, 1, out.data());
  std::vector<double> flat;
  flat.reserve(2 * n);
  for (const Complex& c : out) {
    flat.push_back(c.real());
    flat.push_back(c.imag());
  }
  return checksum_doubles(flat.data(), flat.size());
}

/// Reference O(n^2) DFT for validation in tests (small n only).
std::vector<Complex> dft_reference(const std::vector<Complex>& in);

}  // namespace lbmf::cilkbench
