#pragma once

// cilksort (Fig. 4): parallel mergesort with a parallel divide-and-conquer
// merge, ported from the classic Cilk-5 demo. Coarsened base cases (the
// paper notes all but fib/fibx/knapsack are coarsened).

#include <algorithm>
#include <cstdint>
#include <vector>

#include "lbmf/cilkbench/common.hpp"

namespace lbmf::cilkbench {
namespace detail {

inline constexpr std::size_t kSortBase = 1024;   // std::sort below this
inline constexpr std::size_t kMergeBase = 2048;  // serial merge below this

/// Merge [a, a+na) and [b, b+nb) into out, splitting the larger run at its
/// median and binary-searching the split point in the other run.
template <FencePolicy P>
void merge_par(const std::uint32_t* a, std::size_t na, const std::uint32_t* b,
               std::size_t nb, std::uint32_t* out) {
  if (na < nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (na + nb <= kMergeBase || nb == 0) {
    std::merge(a, a + na, b, b + nb, out);
    return;
  }
  const std::size_t ma = na / 2;
  const std::size_t mb = static_cast<std::size_t>(
      std::lower_bound(b, b + nb, a[ma]) - b);
  typename ws::Scheduler<P>::TaskGroup tg;
  auto left = tg.capture([=] { merge_par<P>(a, ma, b, mb, out); });
  tg.spawn(left);
  merge_par<P>(a + ma, na - ma, b + mb, nb - mb, out + ma + mb);
  tg.sync();
}

/// Sort [data, data+n) using tmp as scratch; the result lands in data.
template <FencePolicy P>
void cilksort_rec(std::uint32_t* data, std::uint32_t* tmp, std::size_t n) {
  if (n <= kSortBase) {
    std::sort(data, data + n);
    return;
  }
  const std::size_t half = n / 2;
  {
    typename ws::Scheduler<P>::TaskGroup tg;
    auto left = tg.capture([=] { cilksort_rec<P>(data, tmp, half); });
    tg.spawn(left);
    cilksort_rec<P>(data + half, tmp + half, n - half);
    tg.sync();
  }
  merge_par<P>(data, half, data + half, n - half, tmp);
  std::copy(tmp, tmp + n, data);
}

}  // namespace detail

/// Generate, sort, and checksum n pseudo-random keys (paper input: 10^8).
/// Returns a checksum of the sorted sequence; aborts if the output is not a
/// sorted permutation (cheap spot checks).
template <FencePolicy P>
std::uint64_t cilksort(std::size_t n, std::uint64_t seed = 0x50f7) {
  std::vector<std::uint32_t> data(n);
  Xoshiro256 rng(seed);
  for (auto& x : data) x = static_cast<std::uint32_t>(rng.next());
  std::vector<std::uint32_t> tmp(n);
  detail::cilksort_rec<P>(data.data(), tmp.data(), n);
  std::uint64_t h = 0x5ed;
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) LBMF_CHECK_MSG(data[i - 1] <= data[i], "cilksort output unsorted");
    h = hash_mix(h, data[i]);
  }
  return h;
}

}  // namespace lbmf::cilkbench
