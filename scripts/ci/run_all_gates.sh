#!/usr/bin/env bash
# Run every acceptance-gate suite in sequence — bench, litmus, extract,
# xval — and print a one-line-per-suite summary table at the end. A suite
# failure does not stop the later suites: one invocation reports the state
# of every gate, which is what you want both locally before pushing and in
# the nightly log.
#
# Usage: scripts/ci/run_all_gates.sh [build-dir] [quick|nightly]
# Run from the repository root. The mode selects the xval native iteration
# budget (the other suites always run their --quick gating configuration;
# nightly's full bench sweep is a separate workflow step).
set -uo pipefail

BUILD_DIR="${1:-build}"
MODE="${2:-quick}"

declare -a names=() exits=()

run_suite() {
  local name="$1"; shift
  echo "=== gate suite: $name ==="
  local rc=0
  "$@" || rc=$?
  names+=("$name")
  exits+=("$rc")
  echo "=== $name: exit $rc ==="
}

run_suite bench   scripts/ci/run_bench_gates.sh   "$BUILD_DIR"
run_suite litmus  scripts/ci/run_litmus_gates.sh  "$BUILD_DIR"
run_suite extract scripts/ci/run_extract_gates.sh "$BUILD_DIR"
run_suite xval    scripts/ci/run_xval_gates.sh    "$BUILD_DIR" "$MODE"

echo
echo "gate summary ($MODE):"
printf '  %-10s %-6s %s\n' suite exit status
overall=0
for i in "${!names[@]}"; do
  status=PASS
  if [ "${exits[$i]}" -ne 0 ]; then
    status=FAIL
    overall=1
  fi
  printf '  %-10s %-6s %s\n' "${names[$i]}" "${exits[$i]}" "$status"
done
exit $overall
