#!/usr/bin/env bash
# Litmus-test and fence-inference gates. Positive and negative controls
# for the textual checker, then fence inference end-to-end on the holey
# protocols, then the INFER_* report presence check.
#
# Usage: scripts/ci/run_litmus_gates.sh [build-dir]
# Run from the repository root (litmus paths are repo-relative); artifacts
# land in the current working directory.
set -euo pipefail

BUILD_DIR="${1:-build}"
LITMUS=examples/litmus

if [ ! -x "$BUILD_DIR/examples/litmus_runner" ]; then
  echo "error: $BUILD_DIR/examples/litmus_runner not built" >&2
  exit 2
fi

# Controls: the fence-free Dekker must violate (--expect-violation turns
# that into exit 0), the paper's Fig. 3(a) must be safe.
"$BUILD_DIR"/examples/litmus_runner --expect-violation "$LITMUS"/broken_dekker.lit
"$BUILD_DIR"/examples/litmus_runner "$LITMUS"/asymmetric_dekker.lit

# THE-deque handshake: the concrete paper placement is safe; the
# all-holes-open (fence-free) variants — one thief and two competing
# thieves — both exhibit the lost/duplicated last-task schedule.
"$BUILD_DIR"/examples/litmus_runner "$LITMUS"/the_deque.lit
"$BUILD_DIR"/examples/litmus_runner --expect-violation "$LITMUS"/the_deque_holes.lit
"$BUILD_DIR"/examples/litmus_runner --expect-violation "$LITMUS"/the_deque_two_thieves.lit

# Fence inference end-to-end: the holey Dekker and both holey THE-deque
# variants must solve to placements that pass the full-explorer recheck
# (exit 0). The two-thief variant checks thief-count independence: the
# victim placement must not change when a second thief joins.
"$BUILD_DIR"/examples/fence_inferencer --json=INFER_dekker.json "$LITMUS"/dekker_holes.lit
"$BUILD_DIR"/examples/fence_inferencer --json=INFER_deque.json "$LITMUS"/the_deque_holes.lit
"$BUILD_DIR"/examples/fence_inferencer --json=INFER_deque2.json "$LITMUS"/the_deque_two_thieves.lit

missing=0
for f in INFER_dekker.json INFER_deque.json INFER_deque2.json; do
  if ! test -s "$f"; then
    echo "::error::gated artifact $f is missing or empty"
    missing=1
  fi
done
exit $missing
