#!/usr/bin/env bash
# Litmus-test and fence-inference gates. Positive and negative controls
# for the textual checker, then fence inference end-to-end on the holey
# protocols, then hard checks on the gated INFER_* reports: run counts,
# optimum costs, and the exact inferred placements. A run-count
# regression (the engine needing more explorer checks than the gate
# allows) fails loudly here rather than drifting silently.
#
# Usage: scripts/ci/run_litmus_gates.sh [build-dir]
# Run from the repository root (litmus paths are repo-relative); artifacts
# (INFER_*.json reports and GRAPH_*.bin prefix-region caches) land in the
# current working directory.
set -euo pipefail

BUILD_DIR="${1:-build}"
LITMUS=examples/litmus

if [ ! -x "$BUILD_DIR/examples/litmus_runner" ]; then
  echo "error: $BUILD_DIR/examples/litmus_runner not built" >&2
  exit 2
fi

# Require an exact substring in a gated report; print the report on miss so
# the failure is diagnosable straight from the CI log.
expect_in() {
  local file="$1" pattern="$2"
  if ! grep -qF -- "$pattern" "$file"; then
    echo "::error::$file: expected \`$pattern\`"
    echo "--- $file ---"
    cat "$file"
    return 1
  fi
}

# Explorer-run-count gate: candidates_verified in [1, max]. More runs than
# the gate means the symmetry/clause machinery regressed.
expect_runs_at_most() {
  local file="$1" max="$2"
  local runs
  runs=$(sed -n 's/.*"candidates_verified": \([0-9]*\),.*/\1/p' "$file")
  if [ -z "$runs" ] || [ "$runs" -lt 1 ] || [ "$runs" -gt "$max" ]; then
    echo "::error::$file: candidates_verified='$runs', gate allows 1..$max"
    cat "$file"
    return 1
  fi
  echo "$file: $runs explorer run(s) (gate: <= $max)"
}

# Controls: the fence-free Dekker must violate (--expect-violation turns
# that into exit 0), the paper's Fig. 3(a) must be safe.
"$BUILD_DIR"/examples/litmus_runner --expect-violation "$LITMUS"/broken_dekker.lit
"$BUILD_DIR"/examples/litmus_runner "$LITMUS"/asymmetric_dekker.lit

# THE-deque handshake: the concrete paper placement is safe; the
# all-holes-open (fence-free) variants — one thief and two competing
# thieves — both exhibit the lost/duplicated last-task schedule. The
# two-thief, Chase-Lev, and rwlock protocols declare `symmetric` groups;
# --no-symmetry re-runs one of them as the exact-search control.
"$BUILD_DIR"/examples/litmus_runner "$LITMUS"/the_deque.lit
"$BUILD_DIR"/examples/litmus_runner --expect-violation "$LITMUS"/the_deque_holes.lit
"$BUILD_DIR"/examples/litmus_runner --expect-violation "$LITMUS"/the_deque_two_thieves.lit
"$BUILD_DIR"/examples/litmus_runner --expect-violation --no-symmetry "$LITMUS"/the_deque_two_thieves.lit

# Chase-Lev double-take and the biased rwlock: both fence-free versions
# must exhibit their races (the owner/reader announce left buffered).
"$BUILD_DIR"/examples/litmus_runner --expect-violation "$LITMUS"/chase_lev.lit
"$BUILD_DIR"/examples/litmus_runner --expect-violation "$LITMUS"/biased_rwlock.lit

# The mutex zoo: every fence-free (holey) member must exhibit its race,
# every checked-in repaired variant must be exhaustively safe.
"$BUILD_DIR"/examples/litmus_runner --expect-violation "$LITMUS"/bakery_holes.lit
"$BUILD_DIR"/examples/litmus_runner --expect-violation "$LITMUS"/spinlock_holes.lit
"$BUILD_DIR"/examples/litmus_runner --expect-violation "$LITMUS"/futex_holes.lit
"$BUILD_DIR"/examples/litmus_runner "$LITMUS"/bakery.lit
"$BUILD_DIR"/examples/litmus_runner "$LITMUS"/spinlock.lit
"$BUILD_DIR"/examples/litmus_runner "$LITMUS"/futex_mutex.lit

# Fence inference end-to-end: every holey protocol must solve to a
# placement that passes the full-explorer recheck (exit 0). The big
# symmetric protocols persist their prefix-region graphs (GRAPH_*.bin).
"$BUILD_DIR"/examples/fence_inferencer --json=INFER_dekker.json "$LITMUS"/dekker_holes.lit
"$BUILD_DIR"/examples/fence_inferencer --json=INFER_deque.json "$LITMUS"/the_deque_holes.lit
"$BUILD_DIR"/examples/fence_inferencer --graph-cache=GRAPH_deque2.bin \
    --json=INFER_deque2.json "$LITMUS"/the_deque_two_thieves.lit
"$BUILD_DIR"/examples/fence_inferencer --graph-cache=GRAPH_chase_lev.bin \
    --json=INFER_chase_lev.json "$LITMUS"/chase_lev.lit
"$BUILD_DIR"/examples/fence_inferencer --graph-cache=GRAPH_rwlock.bin \
    --json=INFER_rwlock.json "$LITMUS"/biased_rwlock.lit
"$BUILD_DIR"/examples/fence_inferencer --json=INFER_futex.json "$LITMUS"/futex_holes.lit
"$BUILD_DIR"/examples/fence_inferencer --json=INFER_spinlock.json "$LITMUS"/spinlock_holes.lit
"$BUILD_DIR"/examples/fence_inferencer --graph-cache=GRAPH_bakery.bin \
    --json=INFER_bakery.json "$LITMUS"/bakery_holes.lit

# Incremental re-exploration across processes: a second solve against the
# persisted graph must report a prefix-cache hit and reproduce the report
# (modulo nothing — the verdicts are deterministic).
"$BUILD_DIR"/examples/fence_inferencer --graph-cache=GRAPH_deque2.bin \
    --json=INFER_deque2_rerun.json "$LITMUS"/the_deque_two_thieves.lit \
    | tee /dev/stderr | grep -q "prefix cache: hit"
cmp INFER_deque2.json INFER_deque2_rerun.json
rm -f INFER_deque2_rerun.json

# Two-thief gate, tightened by symmetry + incremental re-exploration: the
# pre-symmetry engine needed 12 explorer runs for this lattice; the gate
# is <= 4 with the exact cost-3520 asymmetric placement of PR 5.
expect_runs_at_most INFER_deque2.json 4
expect_in INFER_deque2.json '"best_cost": 3520,'
expect_in INFER_deque2.json '"recheck_safe": true,'
expect_in INFER_deque2.json '{"site": "cpu0@0[T]=0", "line": 39, "fence": "l-mfence"}'
expect_in INFER_deque2.json '{"site": "cpu1@3[H]=1", "line": 60, "fence": "mfence"}'
expect_in INFER_deque2.json '{"site": "cpu2@3[H]=1", "line": 77, "fence": "mfence"}'

# Chase-Lev: the CGO'13 repair — one l-mfence on the owner's bottom
# publish, nothing on the thieves (their CAS is a locked RMW).
expect_runs_at_most INFER_chase_lev.json 4
expect_in INFER_chase_lev.json '"best_cost": 3320,'
expect_in INFER_chase_lev.json '"recheck_safe": true,'
expect_in INFER_chase_lev.json '{"site": "cpu0@0[B]=1", "line": 36, "fence": "l-mfence"}'
expect_in INFER_chase_lev.json '{"site": "cpu1@8[S]=2", "line": 65, "fence": "none"}'
expect_in INFER_chase_lev.json '{"site": "cpu2@8[S]=2", "line": 89, "fence": "none"}'

# Biased rwlock: the asymmetric Dekker placement per reader/writer pair —
# l-mfence on the hot reader announce, mfence on each writer announce.
expect_runs_at_most INFER_rwlock.json 4
expect_in INFER_rwlock.json '"best_cost": 3520,'
expect_in INFER_rwlock.json '"recheck_safe": true,'
expect_in INFER_rwlock.json '{"site": "cpu0@0[R]=1", "line": 31, "fence": "l-mfence"}'
expect_in INFER_rwlock.json '{"site": "cpu1@1[I]=1", "line": 43, "fence": "mfence"}'
expect_in INFER_rwlock.json '{"site": "cpu2@1[I]=1", "line": 59, "fence": "mfence"}'

# Futex lost-wakeup: the repair the kernel literature hand-fences with a
# full barrier on both sides comes out asymmetric — l-mfence on the hot
# unlock release, mfence only on the waiter registration.
expect_runs_at_most INFER_futex.json 8
expect_in INFER_futex.json '"best_cost": 3260,'
expect_in INFER_futex.json '"recheck_safe": true,'
expect_in INFER_futex.json '{"site": "cpu0@0[M]=0", "line": 24, "fence": "l-mfence"}'
expect_in INFER_futex.json '{"site": "cpu1@0[W]=1", "line": 33, "fence": "mfence"}'

# Owner-biased spinlock: the asymmetric Dekker placement on the barge.
expect_runs_at_most INFER_spinlock.json 4
expect_in INFER_spinlock.json '"best_cost": 3520,'
expect_in INFER_spinlock.json '"recheck_safe": true,'
expect_in INFER_spinlock.json '{"site": "cpu0@0[O]=1", "line": 20, "fence": "l-mfence"}'
expect_in INFER_spinlock.json '{"site": "cpu1@1[C]=1", "line": 32, "fence": "mfence"}'
expect_in INFER_spinlock.json '{"site": "cpu2@1[C]=1", "line": 45, "fence": "mfence"}'

# Bakery, 3^9 lattice: the optimum is asymmetric across roles AND branch
# paths — the hot ticket-1 publish and the contenders' ticket-2 publish
# need no fence at all (ties lose to id 0 / ticket 2 never strictly wins).
expect_runs_at_most INFER_bakery.json 24
expect_in INFER_bakery.json '"best_cost": 7360,'
expect_in INFER_bakery.json '"recheck_safe": true,'
expect_in INFER_bakery.json '{"site": "cpu0@0[C0]=1", "line": 41, "fence": "l-mfence"}'
expect_in INFER_bakery.json '{"site": "cpu0@4[N0]=2", "line": 45, "fence": "l-mfence"}'
expect_in INFER_bakery.json '{"site": "cpu0@7[N0]=1", "line": 49, "fence": "none"}'
expect_in INFER_bakery.json '{"site": "cpu1@1[C1]=1", "line": 69, "fence": "mfence"}'
expect_in INFER_bakery.json '{"site": "cpu1@5[N1]=2", "line": 73, "fence": "none"}'
expect_in INFER_bakery.json '{"site": "cpu1@8[N1]=1", "line": 77, "fence": "mfence"}'
expect_in INFER_bakery.json '{"site": "cpu2@1[C1]=1", "line": 98, "fence": "mfence"}'
expect_in INFER_bakery.json '{"site": "cpu2@5[N1]=2", "line": 102, "fence": "none"}'
expect_in INFER_bakery.json '{"site": "cpu2@8[N1]=1", "line": 106, "fence": "mfence"}'

missing=0
for f in INFER_dekker.json INFER_deque.json INFER_deque2.json \
         INFER_chase_lev.json INFER_rwlock.json \
         INFER_futex.json INFER_spinlock.json INFER_bakery.json \
         GRAPH_deque2.bin GRAPH_chase_lev.bin GRAPH_rwlock.bin \
         GRAPH_bakery.bin; do
  if ! test -s "$f"; then
    echo "::error::gated artifact $f is missing or empty"
    missing=1
  fi
done
exit $missing
