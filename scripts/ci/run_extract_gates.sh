#!/usr/bin/env bash
# Litmus-extraction gates. For every annotated runtime protocol the
# lbmf_extract CLI regenerates the litmus text from the LBMF_* annotations,
# drift-diffs it against the committed hand-written file, then runs fence
# inference over the *generated* text and pins the source-mapped reports:
# the THE-deque must recover the paper's Sec. 6 placement
# ({l-mfence, none, mfence, none} at cost 3260) with every hole mapped back
# to a deque.hpp source line. Finally an nm sweep proves the annotation
# layer compiles away from production binaries.
#
# Usage: scripts/ci/run_extract_gates.sh [build-dir]
# Run from the repository root (litmus paths are repo-relative); artifacts
# (EXTRACT_*.lit generated litmus, EXTRACT_INFER_*.json source-mapped
# reports, GRAPH_extract_*.bin prefix-region caches) land in the current
# working directory.
set -euo pipefail

BUILD_DIR="${1:-build}"
EXTRACT="$BUILD_DIR/examples/lbmf_extract"
LITMUS=examples/litmus

if [ ! -x "$EXTRACT" ]; then
  echo "error: $EXTRACT not built" >&2
  exit 2
fi

# Require an exact substring in a gated report; print the report on miss so
# the failure is diagnosable straight from the CI log. Placement pins grep
# the line-number-free `"site" ... "fence"` pairs and the `"source":` path
# *prefixes* — header line numbers shift on unrelated edits, the mapping
# itself must not.
expect_in() {
  local file="$1" pattern="$2"
  if ! grep -qF -- "$pattern" "$file"; then
    echo "::error::$file: expected \`$pattern\`"
    echo "--- $file ---"
    cat "$file"
    return 1
  fi
}

# -------------------------------------------------------------- drift gates
# Regenerate each protocol's litmus from its annotations and require the
# semantic diff against the committed file to be clean. The CLI exits 1 and
# prints the per-instruction diff on drift.
"$EXTRACT" the-deque     --emit=EXTRACT_the_deque.lit \
    --check="$LITMUS"/the_deque_holes.lit
"$EXTRACT" chase-lev     --emit=EXTRACT_chase_lev.lit \
    --check="$LITMUS"/chase_lev.lit
"$EXTRACT" biased-rwlock --emit=EXTRACT_biased_rwlock.lit \
    --check="$LITMUS"/biased_rwlock.lit
"$EXTRACT" bakery        --emit=EXTRACT_bakery.lit \
    --check="$LITMUS"/bakery_holes.lit

# ---------------------------------------------------------- inference gates
# Fence inference end-to-end over the GENERATED litmus text. Because
# provenance is excluded from problem identity, the generated problems
# share prefix-region graph-cache keys with the committed ones.
"$EXTRACT" the-deque --infer --json=EXTRACT_INFER_the_deque.json
"$EXTRACT" chase-lev --infer --json=EXTRACT_INFER_chase_lev.json \
    --graph-cache=GRAPH_extract_chase_lev.bin
"$EXTRACT" biased-rwlock --infer --json=EXTRACT_INFER_biased_rwlock.json \
    --graph-cache=GRAPH_extract_rwlock.bin
"$EXTRACT" bakery --infer --json=EXTRACT_INFER_bakery.json \
    --graph-cache=GRAPH_extract_bakery.bin

# THE-deque: the paper's placement, recovered from annotations alone, with
# every hole mapped back to its announce/claim site in ws/deque.hpp.
expect_in EXTRACT_INFER_the_deque.json '"best_cost": 3260,'
expect_in EXTRACT_INFER_the_deque.json '"recheck_safe": true,'
expect_in EXTRACT_INFER_the_deque.json '{"site": "cpu0@0[T]=0", "fence": "l-mfence"'
expect_in EXTRACT_INFER_the_deque.json '{"site": "cpu0@3[T]=1", "fence": "none"'
expect_in EXTRACT_INFER_the_deque.json '{"site": "cpu1@1[H]=1", "fence": "mfence"'
expect_in EXTRACT_INFER_the_deque.json '{"site": "cpu1@7[H]=0", "fence": "none"'
expect_in EXTRACT_INFER_the_deque.json '"fence": "l-mfence", "source": "lbmf/ws/deque.hpp:'
expect_in EXTRACT_INFER_the_deque.json '"fence": "mfence", "source": "lbmf/ws/deque.hpp:'

# Chase-Lev: one l-mfence on the owner's bottom publish, nothing on the
# thieves, all five holes source-mapped into ws/chase_lev.hpp.
expect_in EXTRACT_INFER_chase_lev.json '"best_cost": 3320,'
expect_in EXTRACT_INFER_chase_lev.json '"recheck_safe": true,'
expect_in EXTRACT_INFER_chase_lev.json '{"site": "cpu0@0[B]=1", "fence": "l-mfence"'
expect_in EXTRACT_INFER_chase_lev.json '{"site": "cpu1@8[S]=2", "fence": "none"'
expect_in EXTRACT_INFER_chase_lev.json '{"site": "cpu2@8[S]=2", "fence": "none"'
expect_in EXTRACT_INFER_chase_lev.json '"fence": "l-mfence", "source": "lbmf/ws/chase_lev.hpp:'

# Biased rwlock: asymmetric Dekker per reader/writer pair — l-mfence on the
# hot reader announce, mfence on each writer announce.
expect_in EXTRACT_INFER_biased_rwlock.json '"best_cost": 3520,'
expect_in EXTRACT_INFER_biased_rwlock.json '"recheck_safe": true,'
expect_in EXTRACT_INFER_biased_rwlock.json '{"site": "cpu0@0[R]=1", "fence": "l-mfence"'
expect_in EXTRACT_INFER_biased_rwlock.json '{"site": "cpu1@1[I]=1", "fence": "mfence"'
expect_in EXTRACT_INFER_biased_rwlock.json '{"site": "cpu2@1[I]=1", "fence": "mfence"'
expect_in EXTRACT_INFER_biased_rwlock.json '"fence": "l-mfence", "source": "lbmf/rwlock/rwlock.hpp:'

# Bakery (recorded via the LBMF_ROLES role-count parameter): the
# per-branch-path asymmetric optimum — hot ticket-1 and contender
# ticket-2 publishes need no fence — with all nine holes source-mapped
# into zoo/bakery.hpp.
expect_in EXTRACT_INFER_bakery.json '"best_cost": 7360,'
expect_in EXTRACT_INFER_bakery.json '"recheck_safe": true,'
expect_in EXTRACT_INFER_bakery.json '{"site": "cpu0@0[C0]=1", "fence": "l-mfence"'
expect_in EXTRACT_INFER_bakery.json '{"site": "cpu0@4[N0]=2", "fence": "l-mfence"'
expect_in EXTRACT_INFER_bakery.json '{"site": "cpu0@7[N0]=1", "fence": "none"'
expect_in EXTRACT_INFER_bakery.json '{"site": "cpu1@1[C1]=1", "fence": "mfence"'
expect_in EXTRACT_INFER_bakery.json '{"site": "cpu1@5[N1]=2", "fence": "none"'
expect_in EXTRACT_INFER_bakery.json '{"site": "cpu1@8[N1]=1", "fence": "mfence"'
expect_in EXTRACT_INFER_bakery.json '"fence": "l-mfence", "source": "lbmf/zoo/bakery.hpp:'
expect_in EXTRACT_INFER_bakery.json '"fence": "mfence", "source": "lbmf/zoo/bakery.hpp:'

# ---------------------------------------------------------- compile-away gate
# Only the extraction targets (built with -DLBMF_EXTRACT=1) may contain the
# recording functions; a production binary that links the same runtime
# headers must not — the annotations are supposed to vanish.
# (grep without -q: under pipefail, -q quitting early would SIGPIPE nm and
# fail the pipeline even on a match.)
if ! nm -C "$EXTRACT" | grep 'record_.*_protocol' >/dev/null; then
  echo "::error::$EXTRACT: expected record_*_protocol symbols (extraction build)"
  exit 1
fi
if nm -C "$BUILD_DIR/examples/fence_inferencer" | grep 'record_.*_protocol'; then
  echo "::error::fence_inferencer: annotation symbols leaked into a production binary"
  exit 1
fi
echo "compile-away gate: recording symbols present only in lbmf_extract"

missing=0
for f in EXTRACT_the_deque.lit EXTRACT_chase_lev.lit \
         EXTRACT_biased_rwlock.lit EXTRACT_bakery.lit \
         EXTRACT_INFER_the_deque.json EXTRACT_INFER_chase_lev.json \
         EXTRACT_INFER_biased_rwlock.json EXTRACT_INFER_bakery.json \
         GRAPH_extract_chase_lev.bin GRAPH_extract_rwlock.bin \
         GRAPH_extract_bakery.bin; do
  if ! test -s "$f"; then
    echo "::error::gated artifact $f is missing or empty"
    missing=1
  fi
done
exit $missing
