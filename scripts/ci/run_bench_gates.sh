#!/usr/bin/env bash
# Bench acceptance gates (the E-series criteria from DESIGN.md). Runs the
# smoke benches, then every gating bench in --quick mode, then verifies
# each gating bench left its JSON report behind — a missing or empty file
# means a bench silently stopped emitting its report, which previously
# went unnoticed until someone diffed the uploaded artifacts.
#
# Usage: scripts/ci/run_bench_gates.sh [build-dir]
# Runs locally too; artifacts land in the current working directory.
set -euo pipefail

BUILD_DIR="${1:-build}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: '$BUILD_DIR' does not look like a build tree (no bench/)" >&2
  exit 2
fi

# Smoke runs: must exit 0, no gated artifact.
"$BUILD_DIR"/bench/bench_sim_dekker
"$BUILD_DIR"/bench/bench_sim_contention
"$BUILD_DIR"/bench/bench_cilk_serial --test 1

# Leaves BENCH_arw.json (E6/E7 sweep + E15 writer latency).
"$BUILD_DIR"/bench/bench_arw --quick
# Gates on the E15 acceptance ratios (exit 1 when the batched fan-out wave
# is < 3x the sequential loop or coalesced throughput < 2x uncoalesced);
# leaves BENCH_roundtrip.json.
"$BUILD_DIR"/bench/bench_roundtrip --quick
# Gates on the E14 acceptance ratios (exit 1 below 5x/4x) and the E20
# scale-up section (symmetry >= 1.3x fewer states with equal verdicts,
# spill segments >= 1 with unchanged counters, incremental sweep strictly
# cheaper than cold with bit-identical optima); leaves BENCH_explorer.json
# with the symmetry/spill/incremental section and peak RSS.
"$BUILD_DIR"/bench/bench_explorer --quick
# Gates on the E16 acceptance (guided == naive optimum, fresh recheck
# SAFE, >= 4x fewer explorer runs); leaves BENCH_infer.json.
"$BUILD_DIR"/bench/bench_infer --quick
# Gates on the E17 acceptance (every grid point SAT+SAFE, >= 2 distinct
# optima along the freq axis at the paper's 150-cycle round trip, three
# hand-checked grid points reproduced); leaves BENCH_sweep.json.
"$BUILD_DIR"/bench/bench_sweep --quick
# Gates on the E18 acceptance (exactly 2 quiescent-point switches across
# the phase change, adaptive within 1.10x of the best static policy at
# both steady-state extremes, worst static >= 1.5x adaptive, live
# scheduler checksum); leaves BENCH_adapt.json.
"$BUILD_DIR"/bench/bench_adapt --quick
# Gates on the E10 acceptance (asym/sym >= 1 at the rare-update point,
# 1 updater / 10ms); leaves BENCH_flowtable.json.
"$BUILD_DIR"/bench/bench_flowtable --quick
# Gates on the E19 acceptance (>= 1M live flows across >= 8 growable
# shards, asym >= 1.3x sym on p99 sojourn and flows/sec at the
# rare-update point, cross-shard wave >= 2x sequential rule push,
# >= 1 adaptive policy switch per shard); leaves BENCH_serve.json.
"$BUILD_DIR"/bench/bench_serve --quick

missing=0
for f in BENCH_arw.json BENCH_roundtrip.json BENCH_explorer.json \
         BENCH_infer.json BENCH_sweep.json BENCH_adapt.json \
         BENCH_flowtable.json BENCH_serve.json; do
  if ! test -s "$f"; then
    echo "::error::gated artifact $f is missing or empty"
    missing=1
  fi
done
exit $missing
