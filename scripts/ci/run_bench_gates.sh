#!/usr/bin/env bash
# Bench acceptance gates (the E-series criteria from DESIGN.md). Runs the
# smoke benches, then every gating bench in --quick mode, then verifies
# each gating bench left its JSON report behind — a missing or empty file
# means a bench silently stopped emitting its report, which previously
# went unnoticed until someone diffed the uploaded artifacts.
#
# Usage: scripts/ci/run_bench_gates.sh [build-dir]
# Runs locally too; artifacts land in the current working directory.
set -euo pipefail

BUILD_DIR="${1:-build}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: '$BUILD_DIR' does not look like a build tree (no bench/)" >&2
  exit 2
fi

# Smoke runs: must exit 0, no gated artifact.
"$BUILD_DIR"/bench/bench_sim_dekker
"$BUILD_DIR"/bench/bench_sim_contention
"$BUILD_DIR"/bench/bench_cilk_serial --test 1

# Leaves BENCH_arw.json (E6/E7 sweep + E15 writer latency).
"$BUILD_DIR"/bench/bench_arw --quick
# Gates on the E15 acceptance ratios (exit 1 when the batched fan-out wave
# is < 3x the sequential loop or coalesced throughput < 2x uncoalesced);
# leaves BENCH_roundtrip.json.
"$BUILD_DIR"/bench/bench_roundtrip --quick
# Gates on the E14 acceptance ratios (exit 1 below 5x/4x) and the E20
# scale-up section (symmetry >= 1.3x fewer states with equal verdicts,
# spill segments >= 1 with unchanged counters, incremental sweep strictly
# cheaper than cold with bit-identical optima); leaves BENCH_explorer.json
# with the symmetry/spill/incremental section and peak RSS.
"$BUILD_DIR"/bench/bench_explorer --quick
# Gates on the E16 acceptance (guided == naive optimum, fresh recheck
# SAFE, >= 4x fewer explorer runs); leaves BENCH_infer.json.
"$BUILD_DIR"/bench/bench_infer --quick
# Gates on the E17 acceptance (every grid point SAT+SAFE, >= 2 distinct
# optima along the freq axis at the paper's 150-cycle round trip, three
# hand-checked grid points reproduced) plus the backend-axis planes (the
# signal plane never contains double-l-mfence, the role-inverting planes
# keep the (freq 1, rt 10) double-l-mfence corner); leaves BENCH_sweep.json
# with the backend_planes section.
"$BUILD_DIR"/bench/bench_sweep --quick
# Gates on the E18 acceptance (exactly 2 *realized* quiescent-point
# switches across the phase change, adaptive within 1.10x of the best
# static policy at both steady-state extremes, worst static >= 1.5x
# adaptive, live scheduler checksum) plus the backend matrix: in the
# high-symmetric-traffic phase the adaptive policy must book AND realize
# double-l-mfence on both role-inverting backends at >= parity with the
# best static policy, and the signal backend must degrade loudly (booked
# double, realized asymmetric, degraded counter bumped); leaves
# BENCH_adapt.json with the backend_matrix section.
"$BUILD_DIR"/bench/bench_adapt --quick

# Double-l-mfence realization gate on the emitted report: both new
# backends must have booked AND realized the double cell — unless the leg
# was skipped because the host cannot run membarrier at all (the bench
# already verified loud degradation in that case).
for b in membarrier-pair sim-lest; do
  if grep -q "\"backend\":\"$b\",\"booked_double\":true,\"realized_double\":true" \
       BENCH_adapt.json; then
    continue
  fi
  if grep -q "\"backend\":\"$b\"[^}]*\"skipped\":true" BENCH_adapt.json; then
    echo "::warning::backend $b unrealizable on this host; realization gate skipped"
    continue
  fi
  echo "::error::backend $b did not realize double-l-mfence (BENCH_adapt.json)"
  exit 1
done
# The sweep artifact must carry the backend-axis planes it is gated on.
grep -q '"backend_planes"' BENCH_sweep.json || {
  echo "::error::BENCH_sweep.json is missing the backend_planes section"
  exit 1
}
# Gates on the E10 acceptance (asym/sym >= 1 at the rare-update point,
# 1 updater / 10ms); leaves BENCH_flowtable.json.
"$BUILD_DIR"/bench/bench_flowtable --quick
# Gates on the E19 acceptance (>= 1M live flows across >= 8 growable
# shards, asym >= 1.3x sym on p99 sojourn and flows/sec at the
# rare-update point, cross-shard wave >= 2x sequential rule push,
# >= 1 adaptive policy switch per shard); leaves BENCH_serve.json.
"$BUILD_DIR"/bench/bench_serve --quick

missing=0
for f in BENCH_arw.json BENCH_roundtrip.json BENCH_explorer.json \
         BENCH_infer.json BENCH_sweep.json BENCH_adapt.json \
         BENCH_flowtable.json BENCH_serve.json; do
  if ! test -s "$f"; then
    echo "::error::gated artifact $f is missing or empty"
    missing=1
  fi
done
exit $missing
