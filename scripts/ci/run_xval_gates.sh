#!/usr/bin/env bash
# Hardware cross-validation gates: run xval_runner over the litmus suite,
# diffing native x86-TSO executions against the simulator's exhaustively
# enumerated reachable sets. Fenced protocols must satisfy observed ⊆
# reachable (anything else is a model-soundness failure); the fence-free
# broken variants must make the hardware witness an outcome from the
# simulator's violating (tainted) set — the silicon reproducing the
# model's counterexample family.
#
# Usage: scripts/ci/run_xval_gates.sh [build-dir] [quick|nightly]
# Run from the repository root; XVAL_*.json artifacts land in the current
# working directory. XVAL_ITERS overrides the per-litmus native iteration
# count (quick: 20000, nightly: 1000000).
#
# Host support: the native leg needs x86-64 and >= 2 online CPUs.
# xval_runner exits 4 on unsupported hosts (after writing its report with
# skipped=true); this script turns that into a loud ::warning skip — never
# a silent pass, never a failure. Everything else nonzero fails the gate.
set -euo pipefail

BUILD_DIR="${1:-build}"
MODE="${2:-quick}"
XVAL="$BUILD_DIR/examples/xval_runner"
LITMUS=examples/litmus

if [ ! -x "$XVAL" ]; then
  echo "error: $XVAL not built" >&2
  exit 2
fi

case "$MODE" in
  quick)   ITERS="${XVAL_ITERS:-20000}" ;;
  nightly) ITERS="${XVAL_ITERS:-1000000}" ;;
  *) echo "error: unknown mode '$MODE' (quick|nightly)" >&2; exit 2 ;;
esac

skipped=0
failed=0

# run_xval <name> [extra flags...] — cross-validate one litmus, writing
# XVAL_<name>.json. Exit 4 (unsupported host) is a counted, loud skip; the
# report artifact is still written and still gated on below.
run_xval() {
  local name="$1"; shift
  local rc=0
  "$XVAL" "$LITMUS/$name.lit" --iters="$ITERS" \
      --json="XVAL_$name.json" "$@" || rc=$?
  case "$rc" in
    0) ;;
    4) echo "::warning::xval $name: native leg skipped (unsupported host" \
            "— non-x86-64 or < 2 online CPUs); simulator sets recorded"
       skipped=$((skipped + 1)) ;;
    *) echo "::error::xval $name: exit $rc"
       failed=1 ;;
  esac
}

# Fenced protocols: every native terminal state must be in the simulator's
# reachable set. The zoo's repaired variants ride the same gate — their
# SAFE verdicts mean a natively observed violating outcome would surface
# here as observed ⊄ reachable or a nonzero tainted hit count.
run_xval store_buffer
run_xval asymmetric_dekker
run_xval peterson_lmfence
run_xval spinlock
run_xval futex_mutex
run_xval bakery

# Broken variants: the hardware must actually produce an outcome from the
# violating set. broken_dekker is the canonical store-buffer reordering —
# if real x86 silicon cannot reproduce it, the harness (not the model) is
# what broke.
run_xval broken_dekker --expect-violation
run_xval store_buffer_holes --expect-violation
run_xval peterson_holes --expect-violation
run_xval spinlock_holes --expect-violation

if [ "$failed" -ne 0 ]; then
  exit 1
fi
if [ "$skipped" -ne 0 ]; then
  echo "::warning::xval: $skipped of 10 native legs skipped on this host"
fi

# Every run — including skipped ones — must leave its report artifact.
missing=0
for f in XVAL_store_buffer.json XVAL_asymmetric_dekker.json \
         XVAL_peterson_lmfence.json XVAL_spinlock.json \
         XVAL_futex_mutex.json XVAL_bakery.json \
         XVAL_broken_dekker.json XVAL_store_buffer_holes.json \
         XVAL_peterson_holes.json XVAL_spinlock_holes.json; do
  if ! test -s "$f"; then
    echo "::error::gated artifact $f is missing or empty"
    missing=1
  fi
done
exit $missing
